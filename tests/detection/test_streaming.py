"""Tests for the online (incremental) detectors."""

import numpy as np
import pytest

from repro.detection.streaming import OnlineEWMADetector, SeasonalZScoreDetector


class TestOnlineEWMA:
    def feed_stable(self, detector, level=100.0, n=50, noise=0.5, seed=0):
        rng = np.random.default_rng(seed)
        for __ in range(n):
            values = level + rng.normal(0.0, noise, detector.n_series)
            labels = detector.update(values)
            assert not labels.any()

    def test_warmup_is_silent(self):
        detector = OnlineEWMADetector(n_series=3, min_observations=10)
        for __ in range(9):
            labels = detector.update(np.array([100.0, 100.0, 0.0]))
            assert not labels.any()

    def test_detects_sudden_drop(self):
        detector = OnlineEWMADetector(n_series=4, k=4.0)
        self.feed_stable(detector)
        values = np.full(4, 100.0)
        values[2] = 40.0
        labels = detector.update(values)
        assert labels.tolist() == [False, False, True, False]

    def test_one_sided_ignores_surges(self):
        detector = OnlineEWMADetector(n_series=1, k=4.0, two_sided=False)
        self.feed_stable(detector)
        assert not detector.update(np.array([300.0]))[0]

    def test_two_sided_catches_surges(self):
        detector = OnlineEWMADetector(n_series=1, k=4.0, two_sided=True)
        self.feed_stable(detector)
        assert detector.update(np.array([300.0]))[0]

    def test_incident_does_not_poison_state(self):
        """During an outage the level must not chase the failed values."""
        detector = OnlineEWMADetector(n_series=1, k=4.0)
        self.feed_stable(detector)
        level_before = detector.forecast[0]
        for __ in range(20):
            assert detector.update(np.array([20.0]))[0]
        assert detector.forecast[0] == pytest.approx(level_before, rel=0.05)

    def test_recovery_after_incident(self):
        detector = OnlineEWMADetector(n_series=1, k=4.0)
        self.feed_stable(detector)
        for __ in range(5):
            detector.update(np.array([20.0]))
        assert not detector.update(np.array([100.0]))[0]

    def test_adapts_to_slow_drift(self):
        detector = OnlineEWMADetector(n_series=1, alpha=0.2, k=4.0)
        rng = np.random.default_rng(1)
        level = 100.0
        for __ in range(300):
            level *= 1.002  # +0.2% per step
            labels = detector.update(np.array([level + rng.normal(0, 0.5)]))
            assert not labels[0]

    def test_constant_series_does_not_alarm_on_noise_floor(self):
        detector = OnlineEWMADetector(n_series=1, k=4.0, min_relative_scale=0.01)
        for __ in range(30):
            assert not detector.update(np.array([100.0]))[0]
        # a 2% dip is inside the relative-scale floor at k=4 (4 * 1%)
        assert not detector.update(np.array([98.0]))[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineEWMADetector(n_series=0)
        with pytest.raises(ValueError):
            OnlineEWMADetector(n_series=1, alpha=0.0)
        with pytest.raises(ValueError):
            OnlineEWMADetector(n_series=1, k=0.0)
        detector = OnlineEWMADetector(n_series=2)
        with pytest.raises(ValueError):
            detector.update(np.array([1.0]))


class TestSeasonalZScore:
    def seasonal_values(self, step, n_series=3, amplitude=50.0, period=24):
        phase = 2.0 * np.pi * (step % period) / period
        return 100.0 + amplitude * np.sin(phase) * np.ones(n_series)

    def feed_cycles(self, detector, cycles=4, noise=0.5, seed=0):
        rng = np.random.default_rng(seed)
        step = 0
        for __ in range(cycles * detector.period):
            values = self.seasonal_values(step, detector.n_series) + rng.normal(
                0.0, noise, detector.n_series
            )
            labels = detector.update(values)
            step += 1
        return step

    def test_quiet_on_seasonal_pattern(self):
        detector = SeasonalZScoreDetector(n_series=3, period=24, k=5.0)
        rng = np.random.default_rng(2)
        step = 0
        for __ in range(5 * 24):
            values = self.seasonal_values(step) + rng.normal(0.0, 0.5, 3)
            labels = detector.update(values)
            assert not labels.any(), step
            step += 1

    def test_detects_drop_at_any_phase(self):
        detector = SeasonalZScoreDetector(n_series=3, period=24, k=4.0)
        step = self.feed_cycles(detector)
        values = self.seasonal_values(step)
        values[1] *= 0.3
        labels = detector.update(values)
        assert labels.tolist() == [False, True, False]

    def test_seasonal_trough_is_not_an_anomaly(self):
        """A 50% swing that repeats every period must never alarm, even
        though it would blow past a non-seasonal control chart."""
        detector = SeasonalZScoreDetector(n_series=1, period=24, k=4.0)
        step = 0
        rng = np.random.default_rng(3)
        for __ in range(6 * 24):
            values = self.seasonal_values(step, n_series=1) + rng.normal(0.0, 0.3, 1)
            assert not detector.update(values)[0]
            step += 1

    def test_warmup_cycles_silent(self):
        detector = SeasonalZScoreDetector(n_series=1, period=4, min_cycles=3)
        for step in range(3 * 4):
            assert not detector.update(np.array([0.0 if step % 4 else 100.0]))[0]

    def test_forecast_returns_phase_mean(self):
        detector = SeasonalZScoreDetector(n_series=1, period=2, min_cycles=1)
        detector.update(np.array([10.0]))  # phase 0
        detector.update(np.array([20.0]))  # phase 1
        assert detector.forecast[0] == pytest.approx(10.0)  # next is phase 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalZScoreDetector(n_series=1, period=0)
        with pytest.raises(ValueError):
            SeasonalZScoreDetector(n_series=1, period=5, k=-1.0)
        detector = SeasonalZScoreDetector(n_series=2, period=5)
        with pytest.raises(ValueError):
            detector.update(np.ones(3))


class TestStreamingWithLocalization:
    def test_ewma_labels_feed_rapminer(self, four_attr_schema):
        """Online detection + RAPMiner: no forecaster needed at all."""
        import numpy as np

        from repro.core.attribute import AttributeCombination
        from repro.core.miner import RAPMiner
        from repro.data.dataset import FineGrainedDataset

        rng = np.random.default_rng(6)
        n = four_attr_schema.n_leaves
        base = rng.uniform(50.0, 150.0, n)
        detector = OnlineEWMADetector(n_series=n, k=4.0)
        for __ in range(40):
            detector.update(base * (1.0 + rng.normal(0.0, 0.01, n)))

        grids = np.meshgrid(*[np.arange(s) for s in four_attr_schema.sizes], indexing="ij")
        codes = np.stack([g.reshape(-1) for g in grids], axis=1)
        crashed = base.copy()
        mask = codes[:, 1] == 2
        crashed[mask] *= 0.3
        labels = detector.update(crashed)
        dataset = FineGrainedDataset(four_attr_schema, codes, crashed, detector.forecast, labels)
        patterns = RAPMiner().localize(dataset, k=1)
        expected = AttributeCombination(
            [None, four_attr_schema.elements(1)[2], None, None]
        )
        assert patterns == [expected]
