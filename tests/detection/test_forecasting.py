"""Tests for the leaf-KPI forecasters."""

import numpy as np
import pytest

from repro.detection.forecasting import (
    EWMAForecaster,
    HoltWintersForecaster,
    MovingAverageForecaster,
    SeasonalNaiveForecaster,
)


class TestMovingAverage:
    def test_mean_of_window(self):
        history = np.array([[1.0], [2.0], [3.0], [4.0]])
        assert MovingAverageForecaster(window=2).forecast(history)[0] == pytest.approx(3.5)

    def test_window_longer_than_history(self):
        history = np.array([[1.0], [3.0]])
        assert MovingAverageForecaster(window=10).forecast(history)[0] == pytest.approx(2.0)

    def test_vectorized_over_series(self):
        history = np.array([[1.0, 10.0], [3.0, 30.0]])
        forecast = MovingAverageForecaster(window=2).forecast(history)
        assert forecast.tolist() == [2.0, 20.0]

    def test_1d_history_promoted(self):
        assert MovingAverageForecaster(window=3).forecast(np.array([1.0, 2.0, 3.0]))[0] == 2.0

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            MovingAverageForecaster().forecast(np.empty((0, 1)))


class TestEWMA:
    def test_constant_series_is_fixed_point(self):
        history = np.full((10, 1), 5.0)
        assert EWMAForecaster(alpha=0.3).forecast(history)[0] == pytest.approx(5.0)

    def test_alpha_one_returns_last(self):
        history = np.array([[1.0], [9.0]])
        assert EWMAForecaster(alpha=1.0).forecast(history)[0] == pytest.approx(9.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EWMAForecaster(alpha=0.0).forecast(np.ones((3, 1)))
        with pytest.raises(ValueError):
            EWMAForecaster(alpha=1.5).forecast(np.ones((3, 1)))

    def test_tracks_level_shift(self):
        history = np.concatenate([np.full((20, 1), 1.0), np.full((20, 1), 10.0)])
        forecast = EWMAForecaster(alpha=0.5).forecast(history)[0]
        assert forecast == pytest.approx(10.0, abs=0.01)


class TestSeasonalNaive:
    def test_repeats_one_period_ago(self):
        history = np.arange(10.0).reshape(-1, 1)
        assert SeasonalNaiveForecaster(period=3).forecast(history)[0] == pytest.approx(7.0)

    def test_short_history_falls_back_to_last(self):
        history = np.array([[1.0], [2.0]])
        assert SeasonalNaiveForecaster(period=100).forecast(history)[0] == pytest.approx(2.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(period=0).forecast(np.ones((3, 1)))

    def test_exact_on_perfectly_periodic_series(self):
        pattern = np.array([1.0, 5.0, 3.0])
        history = np.tile(pattern, 4).reshape(-1, 1)
        forecast = SeasonalNaiveForecaster(period=3).forecast(history)[0]
        assert forecast == pytest.approx(pattern[0])  # next step is phase 0


class TestHoltWinters:
    def test_linear_trend_extrapolated(self):
        history = np.arange(30.0).reshape(-1, 1)
        forecast = HoltWintersForecaster(period=0, alpha=0.8, beta=0.5).forecast(history)[0]
        assert forecast == pytest.approx(30.0, abs=1.0)

    def test_seasonal_series_tracked(self):
        t = np.arange(96.0)
        series = 100.0 + 10.0 * np.sin(2 * np.pi * t / 24.0)
        forecast = HoltWintersForecaster(period=24).forecast(series.reshape(-1, 1))[0]
        expected = 100.0 + 10.0 * np.sin(2 * np.pi * 96.0 / 24.0)
        assert forecast == pytest.approx(expected, abs=2.0)

    def test_invalid_smoothing_rejected(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster(alpha=1.5).forecast(np.ones((10, 1)))

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            HoltWintersForecaster().forecast(np.ones((1, 1)))

    def test_short_history_degrades_to_holt(self):
        history = np.arange(10.0).reshape(-1, 1)
        forecast = HoltWintersForecaster(period=1440).forecast(history)
        assert np.isfinite(forecast).all()


class TestOnSimulatedCdn:
    def test_seasonal_naive_beats_moving_average_on_cdn_series(self):
        """The diurnal CDN pattern is what seasonal forecasters exist for."""
        from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
        from repro.data.schema import cdn_schema

        sim = CDNSimulator(cdn_schema(3, 2, 2, 3), CDNSimulatorConfig(seed=2, noise_sigma=0.01))
        period = 144  # compress a day into 144 steps by sampling every 10 min
        steps = np.arange(0, 3 * 1440, 10)
        values = np.stack([sim.expected_values(int(s)) for s in steps])
        history, target = values[:-1], values[-1]
        seasonal = SeasonalNaiveForecaster(period=period).forecast(history)
        moving = MovingAverageForecaster(window=12).forecast(history)
        seasonal_err = np.abs(seasonal - target).sum()
        moving_err = np.abs(moving - target).sum()
        assert seasonal_err < moving_err
