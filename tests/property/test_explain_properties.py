"""Property-based tests for the localization audit and candidate ranking."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.core.explain import explain
from repro.core.scoring import RAPCandidate, rank_candidates
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes


@st.composite
def audited_scenarios(draw):
    """A labelled dataset plus a random pattern list to audit."""
    sizes = draw(st.lists(st.integers(2, 3), min_size=2, max_size=3))
    schema = schema_from_sizes(sizes)
    n = schema.n_leaves
    labels = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    dataset = FineGrainedDataset.full(schema, np.ones(n), np.ones(n), labels)
    patterns = []
    for __ in range(draw(st.integers(0, 4))):
        values = [
            draw(st.sampled_from((None,) + schema.elements(i)))
            for i in range(schema.n_attributes)
        ]
        patterns.append(AttributeCombination(values))
    return dataset, patterns


@given(audited_scenarios())
@settings(max_examples=80, deadline=None)
def test_coverage_bounds(scenario):
    dataset, patterns = scenario
    audit = explain(dataset, patterns)
    assert 0.0 <= audit.coverage <= 1.0
    assert audit.covered_anomalous_leaves <= audit.total_anomalous_leaves


@given(audited_scenarios())
@settings(max_examples=80, deadline=None)
def test_residual_plus_covered_is_total(scenario):
    dataset, patterns = scenario
    audit = explain(dataset, patterns, max_residual_listed=10_000)
    assert (
        audit.covered_anomalous_leaves + len(audit.residual_leaves)
        == audit.total_anomalous_leaves
    )


@given(audited_scenarios())
@settings(max_examples=60, deadline=None)
def test_new_coverage_sums_to_covered(scenario):
    """Per-pattern 'new anomalies' must sum to the overall covered count."""
    dataset, patterns = scenario
    audit = explain(dataset, patterns)
    assert sum(e.new_anomalies_covered for e in audit.evidence) == (
        audit.covered_anomalous_leaves
    )


@given(audited_scenarios())
@settings(max_examples=60, deadline=None)
def test_adding_patterns_never_reduces_coverage(scenario):
    dataset, patterns = scenario
    coverages = []
    for end in range(len(patterns) + 1):
        coverages.append(explain(dataset, patterns[:end]).coverage)
    assert coverages == sorted(coverages)


candidates_strategy = st.lists(
    st.builds(
        RAPCandidate,
        combination=st.sampled_from(
            [
                AttributeCombination.parse(t)
                for t in ("(a1, *)", "(a2, *)", "(*, b1)", "(a1, b1)", "(a2, b2)")
            ]
        ),
        confidence=st.floats(0.0, 1.0),
        layer=st.integers(1, 2),
        support=st.integers(1, 100),
        anomalous_support=st.integers(0, 100),
    ),
    max_size=8,
)


@given(candidates_strategy, st.data())
@settings(max_examples=80)
def test_ranking_permutation_invariant(candidates, data):
    import random

    shuffled = list(candidates)
    random.Random(data.draw(st.integers(0, 100))).shuffle(shuffled)
    assert rank_candidates(candidates) == rank_candidates(shuffled)


@given(candidates_strategy, st.integers(0, 10))
@settings(max_examples=80)
def test_ranking_topk_is_prefix(candidates, k):
    full = rank_candidates(candidates)
    assert rank_candidates(candidates, k) == full[:k]


@given(candidates_strategy)
@settings(max_examples=80)
def test_ranking_scores_monotone(candidates):
    ranked = rank_candidates(candidates)
    scores = [c.score for c in ranked]
    assert scores == sorted(scores, reverse=True)
