"""Property-based tests on the evaluation metrics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.metrics.localization import precision_recall_f1, recall_at_k

PATTERNS = [
    AttributeCombination.parse(t)
    for t in (
        "(a1, *, *)",
        "(a2, *, *)",
        "(*, b1, *)",
        "(*, b2, *)",
        "(a1, b1, *)",
        "(a1, *, c1)",
        "(*, *, c2)",
    )
]

pattern_lists = st.lists(st.sampled_from(PATTERNS), min_size=0, max_size=5)


@given(pattern_lists, pattern_lists)
@settings(max_examples=100)
def test_prf_bounded(predicted, actual):
    prf = precision_recall_f1(predicted, actual)
    assert 0.0 <= prf.precision <= 1.0
    assert 0.0 <= prf.recall <= 1.0
    assert 0.0 <= prf.f1 <= 1.0


@given(pattern_lists, pattern_lists)
@settings(max_examples=100)
def test_f1_between_precision_and_recall_extremes(predicted, actual):
    prf = precision_recall_f1(predicted, actual)
    assert prf.f1 <= max(prf.precision, prf.recall) + 1e-12
    if prf.precision > 0.0 and prf.recall > 0.0:
        assert prf.f1 >= min(prf.precision, prf.recall) ** 2  # harmonic mean bound


@given(pattern_lists)
@settings(max_examples=60)
def test_self_prediction_is_perfect(patterns):
    if not patterns:
        return
    prf = precision_recall_f1(patterns, patterns)
    assert prf.f1 == 1.0


@given(pattern_lists, pattern_lists)
@settings(max_examples=60)
def test_prf_symmetric_under_swap(predicted, actual):
    """Swapping prediction and truth swaps precision and recall."""
    a = precision_recall_f1(predicted, actual)
    b = precision_recall_f1(actual, predicted)
    assert a.precision == b.recall
    assert a.recall == b.precision
    assert abs(a.f1 - b.f1) < 1e-12


@given(st.lists(st.tuples(pattern_lists, pattern_lists), max_size=5), st.integers(0, 6))
@settings(max_examples=80)
def test_rc_at_k_bounded(cases, k):
    results = [(pred, tuple(actual)) for pred, actual in cases]
    assert 0.0 <= recall_at_k(results, k) <= 1.0


@given(st.lists(st.tuples(pattern_lists, pattern_lists), max_size=5))
@settings(max_examples=60)
def test_rc_at_k_monotone(cases):
    results = [(pred, tuple(set(actual))) for pred, actual in cases]
    values = [recall_at_k(results, k) for k in range(0, 6)]
    assert values == sorted(values)
