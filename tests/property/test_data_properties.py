"""Property-based tests on datasets, injection, and serialization."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid, enumerate_cuboids
from repro.data.dataset import FineGrainedDataset, deviation
from repro.data.injection import InjectionConfig, inject_failures
from repro.data.io import case_from_dict, case_to_dict
from repro.data.injection import LocalizationCase
from repro.data.schema import schema_from_sizes


@st.composite
def valued_datasets(draw, max_attrs=3, max_elements=3):
    sizes = draw(st.lists(st.integers(2, max_elements), min_size=2, max_size=max_attrs))
    schema = schema_from_sizes(sizes)
    n = schema.n_leaves
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    v = rng.uniform(1.0, 100.0, n)
    labels = rng.random(n) < draw(st.floats(0.0, 0.5))
    return FineGrainedDataset.full(schema, v, v * rng.uniform(0.9, 1.1, n), labels)


@st.composite
def combination_for(draw, schema):
    values = []
    for i in range(schema.n_attributes):
        values.append(draw(st.sampled_from((None,) + schema.elements(i))))
    return AttributeCombination(values)


@given(valued_datasets(), st.data())
@settings(max_examples=60, deadline=None)
def test_support_decomposes_over_children(dataset, data):
    """support(ac) = sum of support over any free attribute's children."""
    combination = data.draw(combination_for(dataset.schema))
    free = [i for i, v in enumerate(combination.values) if v is None]
    if not free:
        return
    attr = data.draw(st.sampled_from(free))
    total = 0
    for element in dataset.schema.elements(attr):
        values = list(combination.values)
        values[attr] = element
        total += dataset.support_count(AttributeCombination(values))
    assert total == dataset.support_count(combination)


@given(valued_datasets(), st.data())
@settings(max_examples=60, deadline=None)
def test_value_aggregation_decomposes(dataset, data):
    """Fig. 4 additivity: v(ac) = sum of v over children along any attribute."""
    combination = data.draw(combination_for(dataset.schema))
    free = [i for i, v in enumerate(combination.values) if v is None]
    if not free:
        return
    attr = data.draw(st.sampled_from(free))
    v_total, f_total = dataset.values_of(combination)
    v_sum = f_sum = 0.0
    for element in dataset.schema.elements(attr):
        values = list(combination.values)
        values[attr] = element
        v, f = dataset.values_of(AttributeCombination(values))
        v_sum += v
        f_sum += f
    assert abs(v_sum - v_total) < 1e-6 * max(1.0, abs(v_total))
    assert abs(f_sum - f_total) < 1e-6 * max(1.0, abs(f_total))


@given(valued_datasets(), st.data())
@settings(max_examples=60, deadline=None)
def test_confidence_is_weighted_mean_of_children(dataset, data):
    combination = data.draw(combination_for(dataset.schema))
    support = dataset.support_count(combination)
    if support == 0:
        assert dataset.confidence(combination) == 0.0
        return
    conf = dataset.confidence(combination)
    assert 0.0 <= conf <= 1.0
    assert conf * support == dataset.anomalous_support_count(combination)


@given(valued_datasets())
@settings(max_examples=40, deadline=None)
def test_aggregate_supports_sum_to_rows(dataset):
    for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
        agg = dataset.aggregate(cuboid)
        assert agg.support.sum() == dataset.n_rows
        assert agg.anomalous_support.sum() == dataset.n_anomalous


@given(valued_datasets(), st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_injection_dev_roundtrip(dataset, seed):
    """Injected forecasts reproduce the drawn Dev through Eq. 4 exactly."""
    rng = np.random.default_rng(seed)
    cfg = InjectionConfig()
    mask_pattern = AttributeCombination(
        [dataset.schema.elements(0)[0]] + [None] * (dataset.schema.n_attributes - 1)
    )
    labelled, truth = inject_failures(dataset, [mask_pattern], rng, cfg)
    dev = deviation(labelled.v, labelled.f, cfg.epsilon)
    assert (dev[truth] > cfg.threshold()).all()
    assert (dev[~truth] <= cfg.threshold()).all()
    assert np.array_equal(labelled.labels, truth)


@given(valued_datasets())
@settings(max_examples=30, deadline=None)
def test_case_dict_roundtrip(dataset):
    case = LocalizationCase(
        case_id="prop",
        dataset=dataset,
        true_raps=(
            AttributeCombination(
                [dataset.schema.elements(0)[0]]
                + [None] * (dataset.schema.n_attributes - 1)
            ),
        ),
        metadata={"n": dataset.n_rows},
    )
    rebuilt = case_from_dict(case_to_dict(case))
    assert rebuilt.true_raps == case.true_raps
    assert np.array_equal(rebuilt.dataset.codes, dataset.codes)
    assert np.array_equal(rebuilt.dataset.labels, dataset.labels)
    assert np.allclose(rebuilt.dataset.v, dataset.v)
    assert np.allclose(rebuilt.dataset.f, dataset.f)
