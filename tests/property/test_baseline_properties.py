"""Property-based tests on baseline building blocks."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.adtributor import _surprise
from repro.baselines.squeeze import cluster_deviations, generalized_potential_score
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes


@given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
def test_surprise_non_negative(p, q):
    assert _surprise(p, q) >= 0.0


@given(st.floats(0.0, 1.0))
def test_surprise_zero_iff_equal(p):
    assert _surprise(p, p) == 0.0


@given(st.floats(0.001, 1.0), st.floats(0.001, 1.0))
@settings(max_examples=60)
def test_surprise_symmetric(p, q):
    assert abs(_surprise(p, q) - _surprise(q, p)) < 1e-12


@given(
    st.lists(st.floats(-1.9, 1.9), min_size=0, max_size=60),
)
@settings(max_examples=80)
def test_cluster_deviations_partitions_indices(values):
    """Clusters are a partition of the input indices, largest first."""
    array = np.asarray(values)
    clusters = cluster_deviations(array)
    all_indices = sorted(i for members in clusters for i in members)
    assert all_indices == list(range(array.size))
    sizes = [len(members) for members in clusters]
    assert sizes == sorted(sizes, reverse=True)


@given(
    st.lists(st.floats(-1.9, 1.9), min_size=1, max_size=60),
    st.floats(0.01, 0.1),
)
@settings(max_examples=60)
def test_cluster_members_are_contiguous_in_value(values, bin_width):
    """Clusters never interleave: sorting by value keeps members together."""
    array = np.asarray(values)
    clusters = cluster_deviations(array, bin_width=bin_width)
    intervals = []
    for members in clusters:
        member_values = array[members]
        intervals.append((member_values.min(), member_values.max()))
    intervals.sort()
    for (__, hi), (lo, __) in zip(intervals, intervals[1:]):
        assert hi <= lo + 1e-12


@st.composite
def gps_scenarios(draw):
    schema = schema_from_sizes(draw(st.lists(st.integers(2, 3), min_size=2, max_size=3)))
    n = schema.n_leaves
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    v = rng.uniform(1.0, 100.0, n)
    f = v * rng.uniform(0.5, 1.5, n)
    labels = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    selection = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    return FineGrainedDataset.full(schema, v, f, labels), selection


@given(gps_scenarios())
@settings(max_examples=80, deadline=None)
def test_gps_bounded_above_by_one(scenario):
    dataset, selection = scenario
    score = generalized_potential_score(dataset, selection, dataset.labels)
    assert score <= 1.0 + 1e-9


@given(gps_scenarios())
@settings(max_examples=60, deadline=None)
def test_gps_empty_selection_sentinel(scenario):
    dataset, __ = scenario
    empty = np.zeros(dataset.n_rows, dtype=bool)
    assert generalized_potential_score(dataset, empty, dataset.labels) == -1.0


@given(gps_scenarios())
@settings(max_examples=60, deadline=None)
def test_gps_perfect_hypothesis_scores_one(scenario):
    """When the selection exactly explains the anomaly and its ripple
    prediction is exact, GPS is 1."""
    dataset, __ = scenario
    if dataset.n_anomalous == 0 or dataset.n_anomalous == dataset.n_rows:
        return
    # Build an exact-world: anomalous leaves uniformly deflated, others exact.
    f = dataset.v.copy()
    f[dataset.labels] = dataset.v[dataset.labels] / 0.6
    exact = FineGrainedDataset(dataset.schema, dataset.codes, dataset.v, f, dataset.labels)
    score = generalized_potential_score(exact, exact.labels, exact.labels)
    assert score == np.float64(1.0) or abs(score - 1.0) < 1e-9
