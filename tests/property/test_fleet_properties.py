"""Property: fleet output is bitwise-identical to serial, whatever happens.

The fleet's determinism contract says the steal interleaving, the tenant
mix, the shard count, the quota pressure, the micro-batch size and even
injected worker crashes may change *where* and *when* a case runs — but
never *what* it answers.  Hypothesis drives all of those dimensions at
once through the deterministic ``inline`` drive (a seeded RNG picks which
shard steps next, so every counterexample replays exactly) and compares
against one serial reference run.
"""

from __future__ import annotations

import random
from typing import List, Optional

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.fleet import FleetConfig, fleet_localize
from repro.resilience.chaos import WorkerCrash

#: Shared corpus: generated once, reused read-only by every example.
CASES = generate_rapmd(
    cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=6, n_days=2, seed=9)
)
SERIAL = run_cases(RAPMiner(), CASES, k_from_truth=True)


class SeededChaosLocalizer:
    """Crashes the first execution of each chosen case, then succeeds.

    The in-memory analogue of the resilience layer's marker-file
    ``CrashOnceLocalizer``: the crash schedule is part of the hypothesis
    draw, so chaos is reproducible example by example.
    """

    name = "SeededChaos"

    def __init__(self, inner, crash_case_ids):
        self.inner = inner
        self._pending = set(crash_case_ids)

    def localize(
        self, dataset: FineGrainedDataset, k: Optional[int] = None
    ) -> List[AttributeCombination]:
        crashed = getattr(dataset, "_chaos_case_id", None)
        if crashed in self._pending:
            self._pending.discard(crashed)
            raise WorkerCrash(f"seeded chaos: {crashed}")
        return self.inner.localize(dataset, k)


def _tag(case):
    """Stamp the case id onto the dataset so the chaos hook can see it."""
    case.dataset._chaos_case_id = case.case_id
    return case


@st.composite
def fleet_setups(draw):
    n = len(CASES)
    tenants = [
        draw(st.sampled_from(["alpha", "beta", "gamma", "hot"])) for __ in range(n)
    ]
    crash_ids = draw(
        st.sets(st.sampled_from([c.case_id for c in CASES]), max_size=2)
    )
    config = FleetConfig(
        mode="inline",
        k_from_truth=True,
        shards_per_layout=draw(st.integers(1, 3)),
        steal=draw(st.booleans()),
        microbatch=draw(st.integers(1, 3)),
        tenant_quota=draw(st.integers(1, 8)),
        schedule=random.Random(draw(st.integers(0, 2**32 - 1))),
    )
    # Each crash kills one shard, and requeued work needs a survivor: a
    # crash budget beyond shards_per_layout - 1 can correctly degrade the
    # tail to error rows, which is a different contract (covered by the
    # unit suite) than bit-identity.
    crash_ids = set(sorted(crash_ids)[: config.shards_per_layout - 1])
    return tenants, config, crash_ids


@given(fleet_setups())
@settings(max_examples=25, deadline=None)
def test_fleet_is_bitwise_identical_to_serial(setup):
    tenants, config, crash_ids = setup
    method = (
        SeededChaosLocalizer(RAPMiner(), crash_ids) if crash_ids else RAPMiner()
    )
    evaluation = fleet_localize(
        method, [_tag(c) for c in CASES], tenants=tenants, config=config
    )
    assert [r.case_id for r in evaluation.results] == [
        r.case_id for r in SERIAL.results
    ]
    for got, want in zip(evaluation.results, SERIAL.results):
        assert got.error is None, got.error
        assert got.predicted == want.predicted
        assert got.true_raps == want.true_raps


@given(fleet_setups())
@settings(max_examples=10, deadline=None)
def test_fleet_never_loses_or_duplicates_a_case(setup):
    tenants, config, crash_ids = setup
    method = (
        SeededChaosLocalizer(RAPMiner(), crash_ids) if crash_ids else RAPMiner()
    )
    evaluation = fleet_localize(
        method, [_tag(c) for c in CASES], tenants=tenants, config=config
    )
    assert sorted(r.case_id for r in evaluation.results) == sorted(
        c.case_id for c in CASES
    )
