"""Property: the warm-start fast path never changes the answer."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.config import RAPMinerConfig
from repro.core.incremental import IncrementalRAPMiner
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes


@st.composite
def interval_sequences(draw):
    """A short sequence of labelled intervals over one leaf population.

    Labels persist, drift, clear, or jump between intervals — the fast
    path must agree with the stateless miner in every regime.
    """
    schema = schema_from_sizes(draw(st.lists(st.integers(2, 3), min_size=2, max_size=3)))
    n = schema.n_leaves
    n_intervals = draw(st.integers(1, 4))
    base_labels = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    intervals = []
    labels = base_labels
    for __ in range(n_intervals):
        mutate = draw(st.sampled_from(["keep", "flip_one", "clear", "fresh"]))
        if mutate == "flip_one" and n:
            index = draw(st.integers(0, n - 1))
            labels = labels.copy()
            labels[index] = ~labels[index]
        elif mutate == "clear":
            labels = np.zeros(n, dtype=bool)
        elif mutate == "fresh":
            labels = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
        intervals.append(
            FineGrainedDataset.full(schema, np.ones(n) * 10.0, np.ones(n) * 10.0, labels)
        )
    return intervals


@given(interval_sequences(), st.floats(0.55, 0.95))
@settings(max_examples=60, deadline=None)
def test_incremental_equals_stateless(intervals, t_conf):
    config = RAPMinerConfig(t_conf=t_conf, enable_attribute_deletion=False)
    incremental = IncrementalRAPMiner(config)
    stateless = RAPMiner(config)
    for dataset in intervals:
        assert set(incremental.localize(dataset)) == set(stateless.localize(dataset))


@given(interval_sequences())
@settings(max_examples=40, deadline=None)
def test_incremental_rankings_match_on_fast_path(intervals):
    """Not just the set: the ranked order agrees with the stateless miner."""
    config = RAPMinerConfig(enable_attribute_deletion=False)
    incremental = IncrementalRAPMiner(config)
    stateless = RAPMiner(config)
    for dataset in intervals:
        assert incremental.localize(dataset) == stateless.localize(dataset)
