"""Property-based tests for incident schedules and traces."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.data.trace import Incident, IncidentSchedule, generate_trace

SCHEMA = cdn_schema(4, 2, 2, 3)
SIMULATOR = CDNSimulator(SCHEMA, CDNSimulatorConfig(seed=7, noise_sigma=0.0))

PATTERNS = [
    AttributeCombination.parse(t)
    for t in ("(L1, *, *, *)", "(L2, *, *, *)", "(*, *, *, Site1)", "(*, Wireless, *, *)")
]


@st.composite
def schedules(draw, horizon=8):
    incidents = []
    for __ in range(draw(st.integers(0, 3))):
        start = draw(st.integers(0, horizon - 1))
        end = draw(st.integers(start, horizon - 1))
        incidents.append(
            Incident(
                draw(st.sampled_from(PATTERNS)),
                start=start,
                end=end,
                retain_fraction=draw(st.floats(0.0, 0.9)),
            )
        )
    return IncidentSchedule(incidents)


@given(schedules())
@settings(max_examples=40, deadline=None)
def test_truth_matches_active_windows(schedule):
    for step in range(8):
        truth = schedule.truth_at(step)
        expected = [i.pattern for i in schedule.incidents if i.start <= step <= i.end]
        assert truth == expected


@given(schedules())
@settings(max_examples=25, deadline=None)
def test_trace_values_bounded_by_baseline(schedule):
    """Incidents only ever remove traffic; no leaf exceeds its baseline."""
    for step in generate_trace(SIMULATOR, schedule, 8, sample_every=10):
        baseline = SIMULATOR.snapshot(step.simulator_step).v
        assert (step.values <= baseline + 1e-9).all()
        if not step.truth:
            assert np.allclose(step.values, baseline)


@given(schedules())
@settings(max_examples=25, deadline=None)
def test_unaffected_leaves_untouched(schedule):
    probe = SIMULATOR.snapshot(0).to_dataset()
    for step in generate_trace(SIMULATOR, schedule, 8, sample_every=10):
        affected = np.zeros(probe.n_rows, dtype=bool)
        for pattern in step.truth:
            affected |= probe.mask_of(pattern)
        baseline = SIMULATOR.snapshot(step.simulator_step).v
        assert np.allclose(step.values[~affected], baseline[~affected])
