"""Properties of the serving tier: admission invariants, parser totality.

The admission controller is pure state, so hypothesis can drive it with
arbitrary admit/release interleavings and check the ledger invariants
that the live server depends on (a slot leak would eventually wedge the
whole front door at ``queue_full``).  The request parser must be
*total* over byte strings: whatever arrives off the wire, the only
non-value outcome is a typed :class:`~repro.serving.ProtocolError` —
anything else would let one malformed client kill a handler task.
"""

from __future__ import annotations

from typing import List, Tuple

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.serving import AdmissionConfig, AdmissionController, ProtocolError
from repro.serving.protocol import decode_frame, parse_request

TENANTS = ["a", "b", "c"]


@st.composite
def admission_runs(draw) -> Tuple[AdmissionConfig, List[Tuple[str, str]]]:
    """A config plus an interleaving of admit/release ops per tenant."""
    max_depth = draw(st.integers(min_value=1, max_value=8))
    soft = draw(
        st.one_of(st.none(), st.integers(min_value=1, max_value=max_depth))
    )
    config = AdmissionConfig(
        max_queue_depth=max_depth,
        soft_queue_depth=soft,
        tenant_inflight_limit=draw(st.integers(min_value=1, max_value=6)),
    )
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["admit", "release"]), st.sampled_from(TENANTS)),
            max_size=60,
        )
    )
    return config, ops


@settings(deadline=None, max_examples=200)
@given(admission_runs())
def test_admission_ledger_invariants(run):
    """Depth == sum of tenant shares; caps never exceeded; verdicts typed."""
    config, ops = run
    ctl = AdmissionController(config)
    held = {tenant: 0 for tenant in TENANTS}
    for op, tenant in ops:
        if op == "admit":
            verdict = ctl.try_admit(tenant)
            if verdict.admitted:
                held[tenant] += 1
                assert verdict.tier in ("full", "degraded")
                assert verdict.shed_reason is None
                if verdict.tier == "degraded":
                    assert verdict.deadline_ms == config.degraded_deadline_ms
            else:
                assert verdict.tier is None
                assert verdict.shed_reason in ("queue_full", "tenant_quota")
        elif held[tenant] > 0:
            ctl.release(tenant)
            held[tenant] -= 1
        # The ledger invariants hold after every single operation.
        total = sum(held.values())
        assert ctl.depth == total
        assert ctl.depth <= config.max_queue_depth
        for t in TENANTS:
            assert ctl.tenant_inflight(t) == held[t]
            assert held[t] <= config.tenant_inflight_limit
        assert ctl.snapshot() == {t: n for t, n in held.items() if n}


@settings(deadline=None, max_examples=300)
@given(st.binary(max_size=512))
def test_parse_request_is_total(payload):
    """Arbitrary bytes either parse or raise exactly ProtocolError."""
    try:
        parse_request(payload)
    except ProtocolError as exc:
        assert exc.code in ("bad_json", "bad_request", "bad_case")


@settings(deadline=None, max_examples=300)
@given(st.binary(max_size=64), st.integers(min_value=0, max_value=64))
def test_decode_frame_is_total(data, cap):
    """Arbitrary bytes never crash the frame decoder untyped."""
    try:
        decode_frame(data, max_payload=cap)
    except ProtocolError as exc:
        assert exc.code in ("bad_frame", "truncated", "oversized_payload")
