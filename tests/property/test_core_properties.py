"""Property-based tests on CP, confidence, search, and the RAP definition."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.core.classification_power import (
    all_classification_powers,
    binary_entropy,
    classification_power,
)
from repro.core.cuboid import Cuboid, enumerate_cuboids
from repro.core.search import layerwise_topdown_search
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes


@st.composite
def labelled_datasets(draw, max_attrs=3, max_elements=3):
    sizes = draw(st.lists(st.integers(2, max_elements), min_size=2, max_size=max_attrs))
    schema = schema_from_sizes(sizes)
    n = schema.n_leaves
    labels = np.array(draw(st.lists(st.booleans(), min_size=n, max_size=n)))
    v = np.ones(n) * 10.0
    return FineGrainedDataset.full(schema, v, v.copy(), labels)


@given(st.floats(0.0, 1.0))
def test_binary_entropy_bounded(p):
    assert 0.0 <= binary_entropy(p) <= np.log(2.0) + 1e-12


@given(labelled_datasets())
@settings(max_examples=60, deadline=None)
def test_cp_always_in_unit_interval(dataset):
    for value in all_classification_powers(dataset).values():
        assert -1e-9 <= value <= 1.0 + 1e-9


@given(labelled_datasets())
@settings(max_examples=60, deadline=None)
def test_cp_matches_naive_entropy_computation(dataset):
    """Vectorized CP equals a direct per-branch recomputation of Eq. 1."""
    n = dataset.n_rows
    if n == 0:
        return
    info_d = binary_entropy(dataset.n_anomalous / n)
    for attr in range(dataset.schema.n_attributes):
        expected = 0.0
        if info_d > 0.0:
            info_attr = 0.0
            column = dataset.codes[:, attr]
            for code in np.unique(column):
                branch = dataset.labels[column == code]
                info_attr += (len(branch) / n) * binary_entropy(branch.mean())
            expected = (info_d - info_attr) / info_d
        assert classification_power(dataset, attr) == np.float64(expected) or abs(
            classification_power(dataset, attr) - expected
        ) < 1e-9


@given(labelled_datasets())
@settings(max_examples=40, deadline=None)
def test_aggregate_confidence_consistent_with_scalar(dataset):
    for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
        agg = dataset.aggregate(cuboid)
        for i in range(len(agg)):
            assert abs(agg.confidence[i] - dataset.confidence(agg.combination(i))) < 1e-12


@given(labelled_datasets(), st.floats(0.55, 0.95))
@settings(max_examples=40, deadline=None)
def test_search_candidates_satisfy_rap_definition(dataset, t_conf):
    """Every candidate is anomalous; none of its parents is (Definition 1)."""
    indices = list(range(dataset.schema.n_attributes))
    outcome = layerwise_topdown_search(dataset, indices, t_conf=t_conf, early_stop=False)
    for candidate in outcome.candidates:
        assert dataset.confidence(candidate.combination) > t_conf
        for parent in candidate.combination.parents():
            # Layer-0 (the all-wildcard pattern) is the alarmed overall KPI
            # itself and is outside the search lattice (Algorithm 2 starts
            # at layer 1), so Definition 1's parent check does not apply.
            if parent.layer >= 1:
                assert dataset.confidence(parent) <= t_conf


@given(labelled_datasets(), st.floats(0.55, 0.95))
@settings(max_examples=40, deadline=None)
def test_search_candidates_mutually_incomparable(dataset, t_conf):
    """Criteria 3: no candidate may descend from another candidate."""
    indices = list(range(dataset.schema.n_attributes))
    outcome = layerwise_topdown_search(dataset, indices, t_conf=t_conf, early_stop=False)
    combos = [c.combination for c in outcome.candidates]
    for i, a in enumerate(combos):
        for b in combos[i + 1 :]:
            assert not a.is_ancestor_of(b)
            assert not b.is_ancestor_of(a)


@given(labelled_datasets(), st.floats(0.55, 0.95))
@settings(max_examples=40, deadline=None)
def test_search_equals_bruteforce_rap_definition(dataset, t_conf):
    """Algorithm 2 (without early stop) finds exactly the Definition-1 RAPs.

    Brute force: enumerate every combination of every cuboid; a RAP is an
    anomalous combination none of whose ancestors is anomalous.
    """
    indices = list(range(dataset.schema.n_attributes))
    outcome = layerwise_topdown_search(dataset, indices, t_conf=t_conf, early_stop=False)
    found = {c.combination for c in outcome.candidates}

    expected = set()
    for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
        for combination in cuboid.combinations(dataset.schema):
            if dataset.confidence(combination) <= t_conf:
                continue
            if any(
                dataset.confidence(anc) > t_conf for anc in combination.ancestors()
            ):
                continue
            expected.add(combination)
    assert found == expected


@given(labelled_datasets(), st.floats(0.55, 0.95))
@settings(max_examples=30, deadline=None)
def test_early_stop_result_is_prefix_of_full_search(dataset, t_conf):
    indices = list(range(dataset.schema.n_attributes))
    eager = layerwise_topdown_search(dataset, indices, t_conf=t_conf, early_stop=True)
    full = layerwise_topdown_search(dataset, indices, t_conf=t_conf, early_stop=False)
    eager_combos = [c.combination for c in eager.candidates]
    full_combos = [c.combination for c in full.candidates]
    assert eager_combos == full_combos[: len(eager_combos)]
