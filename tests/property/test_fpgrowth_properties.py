"""Property-based tests: FP-growth vs brute-force subset counting."""

import itertools
from collections import defaultdict

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.fpgrowth import fpgrowth


def brute_force(transactions, min_support, max_length=None):
    counts = defaultdict(int)
    for transaction in transactions:
        items = sorted(set(transaction))
        limit = len(items) if max_length is None else min(max_length, len(items))
        for r in range(1, limit + 1):
            for subset in itertools.combinations(items, r):
                counts[frozenset(subset)] += 1
    return {s: c for s, c in counts.items() if c >= min_support}


transactions_strategy = st.lists(
    st.lists(st.sampled_from("abcdef"), min_size=0, max_size=5),
    min_size=0,
    max_size=25,
)


@given(transactions_strategy, st.integers(1, 6))
@settings(max_examples=80, deadline=None)
def test_matches_brute_force(transactions, min_support):
    assert fpgrowth(transactions, min_support) == brute_force(transactions, min_support)


@given(transactions_strategy, st.integers(1, 4), st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_max_length_matches_brute_force(transactions, min_support, max_length):
    assert fpgrowth(transactions, min_support, max_length=max_length) == brute_force(
        transactions, min_support, max_length=max_length
    )


@given(transactions_strategy, st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_downward_closure(transactions, min_support):
    """Apriori property: every subset of a frequent itemset is frequent
    with at least the same support."""
    frequent = fpgrowth(transactions, min_support)
    for itemset, support in frequent.items():
        for item in itemset:
            subset = itemset - {item}
            if subset:
                assert frequent[subset] >= support


@given(transactions_strategy)
@settings(max_examples=40, deadline=None)
def test_support_one_counts_every_occurring_item(transactions):
    frequent = fpgrowth(transactions, 1)
    occurring = {item for t in transactions for item in t}
    singletons = {next(iter(s)) for s in frequent if len(s) == 1}
    assert singletons == occurring
