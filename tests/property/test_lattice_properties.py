"""Property-based tests on the attribute-combination lattice."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid, cuboid_count, decrease_ratio, enumerate_cuboids
from repro.data.schema import schema_from_sizes


@st.composite
def schemas(draw, max_attrs=4, max_elements=4):
    sizes = draw(
        st.lists(st.integers(2, max_elements), min_size=1, max_size=max_attrs)
    )
    return schema_from_sizes(sizes)


@st.composite
def schema_and_combination(draw):
    schema = draw(schemas())
    values = []
    for i in range(schema.n_attributes):
        elements = schema.elements(i)
        choice = draw(st.sampled_from((None,) + elements))
        values.append(choice)
    return schema, AttributeCombination(values)


@given(schema_and_combination())
@settings(max_examples=80)
def test_parse_str_roundtrip(pair):
    __, combination = pair
    assert AttributeCombination.parse(str(combination)) == combination


@given(schema_and_combination())
@settings(max_examples=80)
def test_parents_are_exactly_one_layer_up(pair):
    __, combination = pair
    for parent in combination.parents():
        assert parent.layer == combination.layer - 1
        assert parent.is_ancestor_of(combination)


@given(schema_and_combination())
@settings(max_examples=80)
def test_children_are_exactly_one_layer_down(pair):
    schema, combination = pair
    for child in combination.children(schema):
        assert child.layer == combination.layer + 1
        assert combination.is_ancestor_of(child)


@given(schema_and_combination())
@settings(max_examples=50)
def test_ancestor_count_formula(pair):
    """A layer-d combination has exactly 2^d - 2 strict non-total ancestors."""
    __, combination = pair
    d = combination.layer
    assert len(combination.ancestors()) == max(0, 2**d - 2)


@given(schema_and_combination())
@settings(max_examples=50)
def test_covered_leaves_matches_enumeration(pair):
    schema, combination = pair
    covered = sum(
        1 for leaf in schema.iter_leaf_values() if combination.matches(leaf)
    )
    assert covered == combination.n_covered_leaves(schema)


@given(schema_and_combination())
@settings(max_examples=50)
def test_ancestry_is_leafset_containment(pair):
    """p ancestor of c  <=>  p covers strictly more leaves including all of c's."""
    schema, combination = pair
    for ancestor in combination.ancestors():
        for leaf in schema.iter_leaf_values():
            if combination.matches(leaf):
                assert ancestor.matches(leaf)


@given(st.integers(1, 10))
def test_cuboid_count_matches_enumeration(n):
    assert len(enumerate_cuboids(n)) == cuboid_count(n)


@given(st.integers(1, 12), st.data())
def test_decrease_ratio_in_unit_interval(n, data):
    k = data.draw(st.integers(0, n))
    ratio = decrease_ratio(n, k)
    assert 0.0 <= ratio <= 1.0


@given(schemas())
@settings(max_examples=40)
def test_cuboid_lengths_sum_to_lattice_size(schema):
    """Sum of cuboid lengths = prod(1 + l(attr)) - 1 (every non-total pattern)."""
    total = 1
    for size in schema.sizes:
        total *= 1 + size
    lengths = sum(
        c.length(schema) for c in enumerate_cuboids(schema.n_attributes)
    )
    assert lengths == total - 1
