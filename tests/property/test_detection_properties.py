"""Property-based tests on detectors and their ensembles."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.detection.detectors import DeviationThresholdDetector
from repro.detection.ensembles import (
    IntersectionDetector,
    MajorityDetector,
    UnionDetector,
)

value_pairs = st.lists(
    st.tuples(st.floats(0.1, 1e5), st.floats(0.1, 1e5)),
    min_size=1,
    max_size=40,
)


@given(value_pairs, st.floats(0.01, 0.9), st.floats(0.01, 0.9))
@settings(max_examples=80)
def test_threshold_monotonicity(pairs, t_low, t_high):
    """A stricter threshold never flags a leaf the looser one cleared."""
    t_low, t_high = sorted((t_low, t_high))
    v = np.array([p[0] for p in pairs])
    f = np.array([p[1] for p in pairs])
    loose = DeviationThresholdDetector(threshold=t_low).detect(v, f)
    strict = DeviationThresholdDetector(threshold=t_high).detect(v, f)
    assert (strict <= loose).all()


@given(value_pairs, st.floats(0.01, 0.9))
@settings(max_examples=60)
def test_two_sided_supersets_one_sided(pairs, threshold):
    v = np.array([p[0] for p in pairs])
    f = np.array([p[1] for p in pairs])
    one = DeviationThresholdDetector(threshold=threshold, two_sided=False).detect(v, f)
    two = DeviationThresholdDetector(threshold=threshold, two_sided=True).detect(v, f)
    assert (one <= two).all()


@given(
    value_pairs,
    st.lists(st.floats(0.05, 0.8), min_size=1, max_size=5),
)
@settings(max_examples=80)
def test_ensemble_ordering(pairs, thresholds):
    """intersection <= majority <= union, for any member set."""
    v = np.array([p[0] for p in pairs])
    f = np.array([p[1] for p in pairs])
    members = [DeviationThresholdDetector(threshold=t) for t in thresholds]
    union = UnionDetector(members).detect(v, f)
    majority = MajorityDetector(members).detect(v, f)
    intersection = IntersectionDetector(members).detect(v, f)
    assert (intersection <= majority).all()
    assert (majority <= union).all()


@given(
    value_pairs,
    st.lists(st.floats(0.05, 0.8), min_size=1, max_size=5),
)
@settings(max_examples=60)
def test_threshold_ensembles_collapse_to_extremes(pairs, thresholds):
    """For nested detectors (thresholds), union == loosest member and
    intersection == strictest member."""
    v = np.array([p[0] for p in pairs])
    f = np.array([p[1] for p in pairs])
    members = [DeviationThresholdDetector(threshold=t) for t in thresholds]
    union = UnionDetector(members).detect(v, f)
    intersection = IntersectionDetector(members).detect(v, f)
    loosest = DeviationThresholdDetector(threshold=min(thresholds)).detect(v, f)
    strictest = DeviationThresholdDetector(threshold=max(thresholds)).detect(v, f)
    assert np.array_equal(union, loosest)
    assert np.array_equal(intersection, strictest)
