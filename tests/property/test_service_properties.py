"""Property-based tests for the service-layer building blocks."""

from collections import deque

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.service.history import RollingHistory


@given(
    st.integers(1, 8),                       # capacity
    st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=40),
)
@settings(max_examples=100)
def test_history_matches_deque_reference(capacity, values):
    """The ring buffer behaves exactly like a bounded deque."""
    history = RollingHistory(n_series=1, capacity=capacity)
    reference = deque(maxlen=capacity)
    for value in values:
        history.append(np.array([value]))
        reference.append(value)
        assert len(history) == len(reference)
        assert history.to_matrix().reshape(-1).tolist() == list(reference)
        assert history.last()[0] == reference[-1]


@given(st.integers(1, 5), st.integers(1, 8), st.integers(0, 30))
@settings(max_examples=60)
def test_history_shape_invariants(n_series, capacity, n_appends):
    history = RollingHistory(n_series=n_series, capacity=capacity)
    rng = np.random.default_rng(0)
    for __ in range(n_appends):
        history.append(rng.normal(size=n_series))
    matrix = history.to_matrix()
    assert matrix.shape == (min(n_appends, capacity), n_series)
    assert history.is_full == (n_appends >= capacity)


@given(
    st.lists(st.floats(0.01, 1e6), min_size=1, max_size=30),
    st.floats(0.01, 0.5),
)
@settings(max_examples=80)
def test_deviation_alarm_threshold_semantics(totals, threshold):
    """The alarm triggers exactly when the relative drop exceeds the threshold."""
    from repro.service.alarm import DeviationAlarm

    alarm = DeviationAlarm(threshold=threshold)
    for forecast in totals:
        for drop in (0.0, threshold / 2.0, threshold * 2.0):
            actual = forecast * (1.0 - drop)
            expected = drop > threshold * (1.0 + 1e-12)
            # epsilon in the denominator only matters at forecast ~ 0
            assert alarm.should_trigger(actual, forecast) == expected
