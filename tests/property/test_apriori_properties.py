"""Property test: Apriori and FP-growth are interchangeable miners."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.baselines.apriori import apriori
from repro.baselines.fpgrowth import fpgrowth

transactions_strategy = st.lists(
    st.lists(st.sampled_from("abcde"), min_size=0, max_size=4),
    min_size=0,
    max_size=15,
)


@given(transactions_strategy, st.integers(1, 5))
@settings(max_examples=60, deadline=None)
def test_apriori_equals_fpgrowth(transactions, min_support):
    assert apriori(transactions, min_support) == fpgrowth(transactions, min_support)


@given(transactions_strategy, st.integers(1, 4), st.integers(1, 3))
@settings(max_examples=40, deadline=None)
def test_apriori_equals_fpgrowth_with_max_length(transactions, min_support, max_length):
    assert apriori(transactions, min_support, max_length=max_length) == fpgrowth(
        transactions, min_support, max_length=max_length
    )
