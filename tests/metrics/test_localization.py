"""Tests for F1 (Eq. 6) and RC@k (Eq. 7)."""

import pytest

from repro.core.attribute import AttributeCombination
from repro.metrics.localization import (
    f1_score,
    mean_f1,
    precision_recall_f1,
    recall_at_k,
)


def ac(text):
    return AttributeCombination.parse(text)


A1 = ac("(a1, *, *)")
A2 = ac("(a2, *, *)")
B1 = ac("(*, b1, *)")
CHILD = ac("(a1, b1, *)")


class TestPrecisionRecallF1:
    def test_perfect_match(self):
        prf = precision_recall_f1([A1, A2], [A2, A1])
        assert prf.precision == prf.recall == prf.f1 == 1.0

    def test_half_right(self):
        prf = precision_recall_f1([A1, B1], [A1, A2])
        assert prf.precision == pytest.approx(0.5)
        assert prf.recall == pytest.approx(0.5)
        assert prf.f1 == pytest.approx(0.5)

    def test_nothing_predicted(self):
        prf = precision_recall_f1([], [A1])
        assert prf == precision_recall_f1([], [A1])
        assert prf.f1 == 0.0

    def test_exact_match_only(self):
        """A child of a true RAP must not count (the paper's criterion)."""
        assert f1_score([CHILD], [A1]) == 0.0

    def test_duplicates_collapsed(self):
        prf = precision_recall_f1([A1, A1], [A1])
        assert prf.precision == 1.0
        assert prf.f1 == 1.0

    def test_asymmetric_counts(self):
        prf = precision_recall_f1([A1], [A1, A2, B1])
        assert prf.precision == 1.0
        assert prf.recall == pytest.approx(1.0 / 3.0)
        assert prf.f1 == pytest.approx(0.5)

    def test_mean_f1(self):
        cases = [([A1], [A1]), ([A2], [A1])]
        assert mean_f1(cases) == pytest.approx(0.5)

    def test_mean_f1_empty(self):
        assert mean_f1([]) == 0.0


class TestRecallAtK:
    def test_eq7_basic(self):
        results = [
            ([A1, B1, A2], (A1,)),       # hit at rank 1
            ([B1, A2, CHILD], (A1, A2)),  # one of two found
        ]
        assert recall_at_k(results, 3) == pytest.approx(2.0 / 3.0)

    def test_k_truncates_ranking(self):
        results = [([B1, CHILD, A1], (A1,))]
        assert recall_at_k(results, 2) == 0.0
        assert recall_at_k(results, 3) == 1.0

    def test_monotone_in_k(self):
        results = [([A1, A2, B1, CHILD], (A1, A2, B1))]
        values = [recall_at_k(results, k) for k in range(1, 5)]
        assert values == sorted(values)

    def test_duplicate_predictions_count_once(self):
        results = [([A1, A1, A1], (A1, A2))]
        assert recall_at_k(results, 3) == pytest.approx(0.5)

    def test_empty_truth_total(self):
        assert recall_at_k([([A1], ())], 3) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k([], -1)

    def test_k_zero(self):
        assert recall_at_k([([A1], (A1,))], 0) == 0.0

    def test_weighting_by_rap_count(self):
        """Eq. 7 pools hits over all cases (cases with more RAPs weigh more)."""
        results = [
            ([A1], (A1,)),                  # 1/1
            ([B1, CHILD], (A1, A2, B1)),    # 1/3
        ]
        assert recall_at_k(results, 2) == pytest.approx(2.0 / 4.0)
