"""Tests for the timing harness."""

import time

import pytest

from repro.metrics.timing import TimingAccumulator, time_localization


class TestTimeLocalization:
    def test_returns_result_and_duration(self, example_dataset):
        def slow_localize(dataset, k=None):
            time.sleep(0.01)
            return ["sentinel"]

        result, seconds = time_localization(slow_localize, example_dataset)
        assert result == ["sentinel"]
        assert seconds >= 0.01

    def test_passes_k(self, example_dataset):
        captured = {}

        def localize(dataset, k=None):
            captured["k"] = k
            return []

        time_localization(localize, example_dataset, k=7)
        assert captured["k"] == 7


class TestAccumulator:
    def test_mean_and_total(self):
        acc = TimingAccumulator()
        for value in (1.0, 2.0, 3.0):
            acc.add(value)
        assert acc.n == 3
        assert acc.mean == pytest.approx(2.0)
        assert acc.total == pytest.approx(6.0)

    def test_empty_mean_is_zero(self):
        assert TimingAccumulator().mean == 0.0

    def test_empty_percentile_raises(self):
        acc = TimingAccumulator()
        with pytest.raises(ValueError, match="no samples"):
            acc.percentile(50)
        with pytest.raises(ValueError, match="no samples"):
            acc.percentiles([50, 95])

    def test_percentiles(self):
        acc = TimingAccumulator(samples=[1.0, 2.0, 3.0, 4.0])
        assert acc.percentile(0) == 1.0
        assert acc.percentile(100) == 4.0
        assert acc.percentile(50) == pytest.approx(2.5)

    def test_percentiles_batch_matches_single_queries(self):
        acc = TimingAccumulator(samples=[4.0, 1.0, 3.0, 2.0])
        assert acc.percentiles([0, 50, 95]) == (
            acc.percentile(0),
            acc.percentile(50),
            acc.percentile(95),
        )

    def test_single_sample_percentile(self):
        acc = TimingAccumulator(samples=[5.0])
        assert acc.percentile(75) == 5.0

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TimingAccumulator().add(-1.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            TimingAccumulator(samples=[1.0]).percentile(101)
