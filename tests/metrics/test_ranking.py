"""Tests for the ranking-quality metrics (precision@k, MRR, MAP)."""

import pytest

from repro.core.attribute import AttributeCombination
from repro.metrics.ranking import (
    average_precision,
    mean_average_precision,
    mean_reciprocal_rank,
    precision_at_k,
)


def ac(text):
    return AttributeCombination.parse(text)


A1, A2, B1, B2 = ac("(a1, *)"), ac("(a2, *)"), ac("(*, b1)"), ac("(*, b2)")


class TestPrecisionAtK:
    def test_perfect_top_k(self):
        assert precision_at_k([([A1, A2], (A1, A2))], 2) == 1.0

    def test_half_right(self):
        assert precision_at_k([([A1, B1], (A1,))], 2) == 0.5

    def test_k_truncates(self):
        assert precision_at_k([([B1, A1], (A1,))], 1) == 0.0

    def test_short_prediction_normalized_by_returned(self):
        assert precision_at_k([([A1], (A1, A2))], 5) == 1.0

    def test_empty_prediction_zero(self):
        assert precision_at_k([([], (A1,))], 3) == 0.0

    def test_duplicates_collapsed(self):
        assert precision_at_k([([A1, A1, B1], (A1,))], 3) == 0.5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k([], 0)

    def test_empty_collection(self):
        assert precision_at_k([], 3) == 0.0


class TestMRR:
    def test_hit_at_rank_one(self):
        assert mean_reciprocal_rank([([A1, B1], (A1,))]) == 1.0

    def test_hit_at_rank_three(self):
        assert mean_reciprocal_rank([([B1, B2, A1], (A1,))]) == pytest.approx(1 / 3)

    def test_miss_scores_zero(self):
        assert mean_reciprocal_rank([([B1, B2], (A1,))]) == 0.0

    def test_averages_over_cases(self):
        results = [([A1], (A1,)), ([B1, A1], (A1,))]
        assert mean_reciprocal_rank(results) == pytest.approx(0.75)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([A1, A2], (A1, A2)) == 1.0

    def test_interleaved_hits(self):
        # hits at positions 1 and 3: (1/1 + 2/3) / 2
        assert average_precision([A1, B1, A2], (A1, A2)) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_truth_first_matters(self):
        good = average_precision([A1, B1], (A1,))
        bad = average_precision([B1, A1], (A1,))
        assert good > bad

    def test_empty_truth(self):
        assert average_precision([A1], ()) == 0.0

    def test_missing_truth_penalized(self):
        assert average_precision([A1], (A1, A2)) == pytest.approx(0.5)

    def test_duplicates_do_not_inflate(self):
        assert average_precision([A1, A1], (A1,)) == 1.0

    def test_map_averages(self):
        results = [([A1], (A1,)), ([B1], (A1,))]
        assert mean_average_precision(results) == pytest.approx(0.5)

    def test_map_empty(self):
        assert mean_average_precision([]) == 0.0


class TestAgainstLocalizers:
    def test_rapminer_ranks_true_raps_first(self, fig7_dataset):
        from repro.core.miner import RAPMiner

        truth = (ac("(a1, *, *)").__class__(["a1", None, None]),)
        predicted = RAPMiner().localize(fig7_dataset, k=3)
        truth = (
            AttributeCombination(["a1", None, None]),
            AttributeCombination(["a2", "b2", None]),
        )
        assert mean_reciprocal_rank([(predicted, truth)]) == 1.0
        assert average_precision(predicted, truth) == 1.0
