"""Tests for the paired statistical comparisons."""

import numpy as np
import pytest

from repro.metrics.significance import (
    BootstrapResult,
    paired_bootstrap,
    per_case_scores,
    wilcoxon_signed_rank,
)


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.9, 0.05, 60)
        b = rng.normal(0.6, 0.05, 60)
        result = paired_bootstrap(a, b, seed=1)
        assert result.mean_difference == pytest.approx(0.3, abs=0.05)
        assert result.significant
        assert result.p_value < 0.01
        assert result.ci_low > 0.2

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        base = rng.normal(0.7, 0.1, 60)
        noise = rng.normal(0.0, 0.05, 60)
        result = paired_bootstrap(base + noise, base + rng.normal(0.0, 0.05, 60), seed=3)
        assert not result.significant

    def test_identical_scores(self):
        scores = np.full(20, 0.8)
        result = paired_bootstrap(scores, scores.copy())
        assert result.mean_difference == 0.0
        assert result.p_value == 1.0
        assert not result.significant

    def test_sign_symmetry(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0.9, 0.05, 40)
        b = rng.normal(0.5, 0.05, 40)
        forward = paired_bootstrap(a, b, seed=5)
        backward = paired_bootstrap(b, a, seed=5)
        assert forward.mean_difference == pytest.approx(-backward.mean_difference)
        assert forward.significant and backward.significant

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            paired_bootstrap(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(3), np.ones(3), confidence=1.5)


class TestWilcoxon:
    def test_clear_difference(self):
        rng = np.random.default_rng(6)
        a = rng.normal(0.9, 0.05, 50)
        b = rng.normal(0.6, 0.05, 50)
        __, p = wilcoxon_signed_rank(a, b)
        assert p < 0.001

    def test_identical_returns_one(self):
        scores = np.full(10, 0.5)
        statistic, p = wilcoxon_signed_rank(scores, scores.copy())
        assert (statistic, p) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilcoxon_signed_rank(np.ones(3), np.ones(5))


class TestPerCaseScores:
    @pytest.fixture
    def evaluations(self, example_schema):
        from repro.core.miner import RAPMiner
        from repro.baselines import Adtributor
        from repro.core.attribute import AttributeCombination
        from repro.data.injection import LocalizationCase
        from repro.experiments.runner import run_cases
        from tests.conftest import make_labelled_dataset

        cases = []
        for i, pattern in enumerate(["(a1, *, *)", "(a2, b2, *)"]):
            ds = make_labelled_dataset(example_schema, [pattern])
            cases.append(
                LocalizationCase(
                    f"case-{i}", ds, (AttributeCombination.parse(pattern),)
                )
            )
        return (
            run_cases(RAPMiner(), cases, k_from_truth=True),
            run_cases(Adtributor(), cases, k_from_truth=True),
        )

    def test_aligned_extraction(self, evaluations):
        a, b = per_case_scores(*evaluations)
        assert a.shape == b.shape == (2,)
        assert a.tolist() == [1.0, 1.0]  # RAPMiner nails both
        assert b[1] == 0.0  # Adtributor misses the 2-D RAP

    def test_mismatched_case_sets_rejected(self, evaluations):
        eval_a, eval_b = evaluations
        eval_b.results.pop()
        with pytest.raises(ValueError):
            per_case_scores(eval_a, eval_b)

    def test_custom_score_function(self, evaluations):
        a, __ = per_case_scores(*evaluations, score=lambda r: float(len(r.predicted)))
        assert (a >= 1).all()

    def test_rapminer_vs_adtributor_significant_on_rapmd(self):
        """End to end: the Fig. 8(b) gap is statistically solid."""
        from repro.baselines import Adtributor
        from repro.core.miner import RAPMiner
        from repro.data.rapmd import RAPMDConfig, generate_rapmd
        from repro.data.schema import cdn_schema
        from repro.experiments.runner import run_cases

        cases = generate_rapmd(
            cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=20, n_days=3, seed=8)
        )
        eval_a = run_cases(RAPMiner(), cases, k=3)
        eval_b = run_cases(Adtributor(), cases, k=3)
        a, b = per_case_scores(eval_a, eval_b)
        result = paired_bootstrap(a, b, seed=9)
        assert result.mean_difference > 0.2
        assert result.significant
