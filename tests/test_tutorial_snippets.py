"""Executable check of the tutorial's narrative (docs/tutorial.md).

Runs the tutorial's storyline end to end so the documentation cannot
silently rot: every claim made by a snippet is asserted here.
"""

import numpy as np
import pytest

from repro import AttributeCombination, AttributeSchema, FineGrainedDataset, RAPMiner
from repro.baselines import Adtributor, AssociationRuleLocalizer, Squeeze
from repro.core import delete_redundant_attributes, enumerate_cuboids, explain
from repro.detection import DeviationThresholdDetector, label_dataset


@pytest.fixture(scope="module")
def tutorial_state():
    schema = AttributeSchema(
        {
            "region": ["us", "eu", "apac"],
            "client": ["web", "ios", "android"],
            "service": ["payments", "search", "catalog"],
        }
    )
    scope = AttributeCombination.parse("(eu, *, payments)")
    rng = np.random.default_rng(0)
    v = rng.uniform(100, 1000, schema.n_leaves)
    table = FineGrainedDataset.full(schema, v, v.copy())
    hit = table.mask_of(scope)
    f = v.copy()
    f[hit] = v[hit] / 0.4
    observed = FineGrainedDataset(schema, table.codes, v, f)
    labelled = label_dataset(observed, DeviationThresholdDetector(threshold=0.3))
    return schema, scope, labelled


class TestSection1DataModel:
    def test_leaf_count(self, tutorial_state):
        schema, __, __ = tutorial_state
        assert schema.n_leaves == 27

    def test_scope_structure(self, tutorial_state):
        schema, scope, __ = tutorial_state
        assert scope.layer == 2
        assert {str(p) for p in scope.parents()} == {
            "(*, *, payments)",
            "(eu, *, *)",
        }
        assert scope.n_covered_leaves(schema) == 3

    def test_cuboid_count(self):
        assert len(enumerate_cuboids(3)) == 7


class TestSection2LeafTable:
    def test_detector_flags_the_scope(self, tutorial_state):
        __, scope, labelled = tutorial_state
        assert labelled.n_anomalous == 3
        assert labelled.confidence(scope) == 1.0


class TestSection3RAPMiner:
    def test_deletion_drops_client(self, tutorial_state):
        __, __, labelled = tutorial_state
        deletion = delete_redundant_attributes(labelled, t_cp=0.005)
        assert deletion.deleted_names(labelled) == ("client",)
        assert deletion.cp_values["client"] < 0.005
        assert deletion.cp_values["region"] > 0.1

    def test_localization_and_audit(self, tutorial_state):
        __, scope, labelled = tutorial_state
        result = RAPMiner().run(labelled, k=3)
        assert result.patterns == [scope]
        audit = explain(labelled, result.patterns)
        assert audit.coverage == 1.0
        assert "coverage: 3/3" in audit.render()


class TestSection4Baselines:
    def test_adtributor_cannot_name_a_2d_scope(self, tutorial_state):
        __, scope, labelled = tutorial_state
        assert scope not in Adtributor().localize(labelled, k=3)

    def test_squeeze_and_rules_find_it(self, tutorial_state):
        __, scope, labelled = tutorial_state
        assert Squeeze().localize(labelled, k=1) == [scope]
        assert AssociationRuleLocalizer().localize(labelled, k=1) == [scope]
