"""Scheduler unit tests: routing, stealing, crash drain, simulation."""

from __future__ import annotations

import pytest

from repro.fleet.scheduler import (
    FleetItem,
    NoCompatibleShard,
    WorkStealingScheduler,
    simulated_makespan,
)

LAYOUT_A = (("a", "b"), (2, 3))
LAYOUT_B = (("x",), (4,))


def item(seq, tenant="t0", layout=LAYOUT_A):
    return FleetItem(seq=seq, tenant=tenant, case=None, layout=layout)


class TestRouting:
    def test_tenants_assigned_round_robin_in_first_seen_order(self):
        sched = WorkStealingScheduler(shards_per_layout=2)
        homes = [
            sched.submit(item(0, "alpha")),
            sched.submit(item(1, "beta")),
            sched.submit(item(2, "gamma")),
        ]
        assert homes == [0, 1, 0]

    def test_tenant_keeps_its_home_across_submissions(self):
        sched = WorkStealingScheduler(shards_per_layout=3)
        first = sched.submit(item(0, "alpha"))
        sched.submit(item(1, "beta"))
        assert sched.submit(item(2, "alpha")) == first

    def test_layouts_get_disjoint_shard_groups(self):
        sched = WorkStealingScheduler(shards_per_layout=2)
        home_a = sched.submit(item(0, "t", LAYOUT_A))
        home_b = sched.submit(item(1, "t", LAYOUT_B))
        shards = {s.shard_id: s.layout for s in sched.shards}
        assert len(shards) == 4
        assert shards[home_a] == LAYOUT_A
        assert shards[home_b] == LAYOUT_B

    def test_dead_home_falls_forward_to_alive_shard(self):
        sched = WorkStealingScheduler(shards_per_layout=2)
        home = sched.submit(item(0, "alpha"))
        sched.acquire(home)  # drain so the kill has nothing to hand back
        sched.kill(home)
        fallback = sched.submit(item(1, "alpha"))
        assert fallback != home
        assert sched.shards[fallback].alive

    def test_no_alive_shard_raises(self):
        sched = WorkStealingScheduler(shards_per_layout=1)
        sched.submit(item(0))
        sched.kill(0)
        with pytest.raises(NoCompatibleShard):
            sched.submit(item(1))


class TestStealing:
    def _loaded(self, n=6):
        """Shard 0 holds *n* items; shard 1 is idle."""
        sched = WorkStealingScheduler(shards_per_layout=2)
        for seq in range(n):
            sched.submit(item(seq, "alpha"))
        return sched

    def test_idle_shard_steals_half_the_tail(self):
        sched = self._loaded(6)
        batch = sched.acquire(1)
        # Victim had 6; the thief takes max(1, 6//2) = 3 from the tail
        # (seqs 3,4,5 in order) and runs the first of them.
        assert [i.seq for i in batch] == [3]
        assert [i.seq for i in sched.shards[1].items] == [4, 5]
        assert [i.seq for i in sched.shards[0].items] == [0, 1, 2]
        assert sched.total_steals == 1
        assert sched.total_stolen == 3

    def test_steal_preserves_relative_order(self):
        sched = self._loaded(7)
        sched.acquire(1)
        stolen = [i.seq for i in sched.shards[1].items]
        assert stolen == sorted(stolen)

    def test_static_mode_never_steals(self):
        sched = WorkStealingScheduler(shards_per_layout=2, steal=False)
        for seq in range(6):
            sched.submit(item(seq, "alpha"))
        assert sched.acquire(1) == []
        assert sched.total_steals == 0

    def test_steal_targets_most_loaded_victim(self):
        sched = WorkStealingScheduler(shards_per_layout=3)
        for seq in range(2):
            sched.submit(item(seq, "alpha"))  # shard 0
        for seq in range(2, 8):
            sched.submit(item(seq, "beta"))  # shard 1
        batch = sched.acquire(2)
        assert batch and batch[0].tenant == "beta"
        assert sched.shards[1].stolen_out == 3

    def test_never_steals_across_layouts(self):
        sched = WorkStealingScheduler(shards_per_layout=1)
        sched.submit(item(0, "t", LAYOUT_A))
        sched.submit(item(1, "t", LAYOUT_B))
        b_shard = sched.shards[1].shard_id
        sched.acquire(b_shard)  # drain B's one item
        assert sched.acquire(b_shard) == []  # nothing to steal from A

    def test_dead_shard_is_not_a_victim(self):
        sched = self._loaded(6)
        sched.kill(0)
        assert sched.acquire(1) == []


class TestAcquire:
    def test_acquire_pops_fifo_and_counts_attempts(self):
        sched = WorkStealingScheduler(shards_per_layout=1)
        for seq in range(3):
            sched.submit(item(seq))
        batch = sched.acquire(0, limit=2)
        assert [i.seq for i in batch] == [0, 1]
        assert all(i.attempts == 1 for i in batch)
        assert sched.shards[0].executed == 2

    def test_blocking_acquire_returns_empty_after_close(self):
        sched = WorkStealingScheduler(shards_per_layout=1)
        sched._ensure_layout(LAYOUT_A)
        sched.close()
        assert sched.acquire(0, block=True) == []

    def test_kill_drains_queue_for_requeue(self):
        sched = WorkStealingScheduler(shards_per_layout=1)
        for seq in range(4):
            sched.submit(item(seq))
        drained = sched.kill(0)
        assert [i.seq for i in drained] == [0, 1, 2, 3]
        assert sched.queue_depths()[0] == 0
        assert not sched.shards[0].alive


class TestSimulatedMakespan:
    def test_stealing_beats_static_on_skewed_load(self):
        # Zipf-flavoured: one heavy tenant, many light ones.  All cases
        # land on the heavy tenant's home shard under static routing.
        jobs = [("heavy", LAYOUT_A, 1.0) for __ in range(16)]
        jobs += [("light-%d" % i, LAYOUT_A, 1.0) for i in range(4)]
        static, static_steals = simulated_makespan(jobs, shards_per_layout=4, steal=False)
        stolen, steals = simulated_makespan(jobs, shards_per_layout=4, steal=True)
        assert static_steals == 0
        assert steals > 0
        assert static / stolen >= 1.3

    def test_uniform_load_needs_no_stealing_to_balance(self):
        jobs = [("t%d" % i, LAYOUT_A, 1.0) for i in range(8)]
        static, __ = simulated_makespan(jobs, shards_per_layout=4, steal=False)
        stolen, __ = simulated_makespan(jobs, shards_per_layout=4, steal=True)
        assert stolen <= static

    def test_makespan_counts_every_job_exactly_once(self):
        jobs = [("heavy", LAYOUT_A, 2.0) for __ in range(5)]
        makespan, __ = simulated_makespan(jobs, shards_per_layout=1, steal=True)
        assert makespan == pytest.approx(10.0)
