"""Supervisor tests: bit-identity, quotas, crash protocol, warm engines."""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import LocalizationCase
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.fleet import FleetConfig, FleetSupervisor, fleet_localize, tenant_of
from repro.resilience.chaos import AlwaysCrashLocalizer, CrashOnceLocalizer


def make_cases(n_cases=6):
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=n_cases, n_days=2, seed=9)
    )


@pytest.fixture(scope="module")
def cases():
    return make_cases()


@pytest.fixture(scope="module")
def serial(cases):
    return run_cases(RAPMiner(), cases, k_from_truth=True)


TENANTS = ["alpha", "beta", "alpha", "gamma", "beta", "alpha"]


def assert_matches_serial(evaluation, serial):
    assert [r.case_id for r in evaluation.results] == [
        r.case_id for r in serial.results
    ]
    for got, want in zip(evaluation.results, serial.results):
        assert got.error is None
        assert got.predicted == want.predicted


class TestBitIdentity:
    def test_inline_mode_matches_serial(self, cases, serial):
        evaluation = fleet_localize(
            RAPMiner(),
            cases,
            tenants=TENANTS,
            config=FleetConfig(mode="inline", k_from_truth=True),
        )
        assert_matches_serial(evaluation, serial)

    def test_thread_mode_matches_serial(self, cases, serial):
        evaluation = fleet_localize(
            RAPMiner(),
            cases,
            tenants=TENANTS,
            config=FleetConfig(mode="thread", k_from_truth=True),
        )
        assert_matches_serial(evaluation, serial)

    def test_microbatch_stacked_kernel_matches_serial(self, cases, serial):
        evaluation = fleet_localize(
            RAPMiner(),
            cases,
            tenants=TENANTS,
            config=FleetConfig(mode="inline", k_from_truth=True, microbatch=3),
        )
        assert_matches_serial(evaluation, serial)

    def test_randomized_interleavings_match_serial(self, cases, serial):
        for seed in range(4):
            evaluation = fleet_localize(
                RAPMiner(),
                cases,
                tenants=TENANTS,
                config=FleetConfig(
                    mode="inline",
                    k_from_truth=True,
                    schedule=random.Random(seed),
                ),
            )
            assert_matches_serial(evaluation, serial)

    def test_quota_pressure_does_not_change_output(self, cases, serial):
        evaluation = fleet_localize(
            RAPMiner(),
            cases,
            tenants=["solo"] * len(cases),  # everything on one tenant
            config=FleetConfig(mode="inline", k_from_truth=True, tenant_quota=1),
        )
        assert_matches_serial(evaluation, serial)


class TestTenants:
    def test_tenant_of_reads_metadata(self, cases):
        case = cases[0]
        assert tenant_of(case) == "default"
        tagged = LocalizationCase(
            case_id=case.case_id,
            dataset=case.dataset,
            true_raps=case.true_raps,
            metadata=dict(case.metadata, tenant="edge-7"),
        )
        assert tenant_of(tagged) == "edge-7"

    def test_mismatched_tenant_list_rejected(self, cases):
        with pytest.raises(ValueError, match="parallel"):
            fleet_localize(RAPMiner(), cases, tenants=["a"])

    def test_quota_parks_excess_in_overflow(self, cases):
        supervisor = FleetSupervisor(
            RAPMiner(), config=FleetConfig(mode="inline", tenant_quota=2)
        )
        with obs.capture() as collector:
            for case in cases:
                supervisor.submit(case, tenant="hot")
        assert collector.metrics.value("fleet_quota_deferrals_total") == len(cases) - 2
        evaluation = supervisor.drain()
        assert len(evaluation.results) == len(cases)

    def test_overflow_layout_first_seen_mid_drain_completes_in_thread_mode(self):
        """A layout born from an overflow admission must still be served.

        Regression: the thread drain used to spawn workers only for the
        shards existing at drain start.  A quota-deferred case of a
        schema no admitted case shared only creates its shard group when
        an earlier case completes, so no worker ever serviced it and
        ``drain()`` blocked forever.
        """
        import threading

        mixed = list(make_cases(3)) + list(
            generate_rapmd(
                cdn_schema(3, 2, 2, 2), RAPMDConfig(n_cases=1, n_days=2, seed=11)
            )
        )
        supervisor = FleetSupervisor(
            RAPMiner(),
            config=FleetConfig(mode="thread", tenant_quota=2, k_from_truth=True),
        )
        for case in mixed:
            supervisor.submit(case, tenant="hot")
        holder = {}
        runner = threading.Thread(
            target=lambda: holder.update(evaluation=supervisor.drain()), daemon=True
        )
        runner.start()
        runner.join(timeout=60)
        assert not runner.is_alive(), "drain() deadlocked on the mid-drain layout"
        serial = run_cases(RAPMiner(), mixed, k_from_truth=True)
        assert_matches_serial(holder["evaluation"], serial)


class TestCrashes:
    def test_crash_once_requeues_and_matches_serial(self, cases, serial, tmp_path):
        chaotic = CrashOnceLocalizer(RAPMiner(), str(tmp_path / "marker"))
        with obs.capture() as collector:
            evaluation = fleet_localize(
                chaotic,
                cases,
                tenants=TENANTS,
                config=FleetConfig(mode="inline", k_from_truth=True),
            )
        assert_matches_serial(evaluation, serial)
        assert collector.metrics.value("fleet_crashes_total") == 1
        assert collector.metrics.value("fleet_requeues_total") >= 1
        assert collector.metrics.value("fleet_errors_total") == 0.0

    def test_crash_once_in_thread_mode(self, cases, serial, tmp_path):
        chaotic = CrashOnceLocalizer(RAPMiner(), str(tmp_path / "marker"))
        evaluation = fleet_localize(
            chaotic,
            cases,
            tenants=TENANTS,
            config=FleetConfig(mode="thread", k_from_truth=True),
        )
        assert_matches_serial(evaluation, serial)

    def test_always_crash_degrades_every_case_to_error(self, cases):
        evaluation = fleet_localize(
            AlwaysCrashLocalizer(),
            cases,
            config=FleetConfig(mode="inline"),
        )
        assert len(evaluation.results) == len(cases)
        # Every case degrades to an error row: the crashing cases carry
        # the WorkerCrash, and once both shards of the layout are dead
        # the rest degrade with NoCompatibleShard instead of waiting.
        assert all(r.error for r in evaluation.results)
        assert any("WorkerCrash" in r.error for r in evaluation.results)
        assert all(r.predicted == [] for r in evaluation.results)

    def test_error_rows_keep_submission_order(self, cases):
        evaluation = fleet_localize(
            AlwaysCrashLocalizer(), cases, config=FleetConfig(mode="inline")
        )
        assert [r.case_id for r in evaluation.results] == [
            c.case_id for c in cases
        ]


class TestWarmEngines:
    def _stream(self, base, case_id):
        """A new interval over *base*'s leaf population (same codes)."""
        ds = base.dataset
        fresh = FineGrainedDataset(
            ds.schema, ds.codes, ds.v.copy(), ds.f.copy(), ds.labels.copy()
        )
        return LocalizationCase(
            case_id=case_id,
            dataset=fresh,
            true_raps=base.true_raps,
            metadata=dict(base.metadata, tenant="t0"),
        )

    def test_same_population_stream_takes_warm_path(self, cases):
        base = cases[0]
        stream = [self._stream(base, f"tick-{i}") for i in range(4)]
        with obs.capture() as collector:
            evaluation = fleet_localize(
                RAPMiner(),
                stream,
                config=FleetConfig(
                    mode="inline", k_from_truth=True, shards_per_layout=1
                ),
            )
        assert all(r.error is None for r in evaluation.results)
        builds = {
            outcome: collector.metrics.value(
                "fleet_engine_builds_total", {"outcome": outcome}
            )
            for outcome in ("cold", "warm")
        }
        assert builds["cold"] == 1.0  # only the stream's first case
        assert builds["warm"] == 3.0

    def test_warm_path_is_bit_identical(self, cases):
        base = cases[0]
        stream = [self._stream(base, f"tick-{i}") for i in range(3)]
        serial = run_cases(RAPMiner(RAPMinerConfig()), make_cases(1), k_from_truth=True)
        fleet = fleet_localize(
            RAPMiner(),
            stream,
            config=FleetConfig(mode="inline", k_from_truth=True, shards_per_layout=1),
        )
        # Every tick is the same interval, so every tick must equal the
        # serial answer for that interval.
        want = run_cases(RAPMiner(), [self._stream(base, "ref")], k_from_truth=True)
        for got in fleet.results:
            assert got.predicted == want.results[0].predicted


class TestFastPresetSmoke:
    """Tier-1 guard: the fleet must serve the real fast-preset data."""

    def test_two_shards_on_fast_preset(self):
        from repro.experiments.presets import fast_preset

        cases = fast_preset(seed=1).rapmd_cases()
        serial = run_cases(RAPMiner(), cases, k=5)
        with obs.capture() as collector:
            evaluation = fleet_localize(
                RAPMiner(),
                cases,
                tenants=[f"tenant-{i % 3}" for i in range(len(cases))],
                config=FleetConfig(mode="thread", k=5, shards_per_layout=2),
            )
        assert [r.case_id for r in evaluation.results] == [
            r.case_id for r in serial.results
        ]
        for got, want in zip(evaluation.results, serial.results):
            assert got.predicted == want.predicted
        assert collector.metrics.value("fleet_cases_total") == len(cases)
