"""Segment-log store tests: round trips, recovery, replay, warm start."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro import obs
from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.fleet import (
    FleetConfig,
    FleetStore,
    FleetSupervisor,
    fleet_localize,
    replay_store,
)
from repro.fleet.store import MAGIC, STORE_VERSION


@pytest.fixture(scope="module")
def cases():
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=4, n_days=2, seed=9)
    )


class TestRoundTrip:
    def test_case_arrays_survive_bit_exactly(self, cases, tmp_path):
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            for seq, case in enumerate(cases):
                store.append_case(seq, f"t{seq % 2}", case)
        with FleetStore(path, mode="r") as store:
            decoded = store.cases()
        assert [tenant for __, tenant, __ in decoded] == ["t0", "t1", "t0", "t1"]
        for (seq, __, got), want in zip(decoded, cases):
            assert got.case_id == want.case_id
            assert got.true_raps == want.true_raps
            np.testing.assert_array_equal(got.dataset.codes, want.dataset.codes)
            assert got.dataset.v.tobytes() == want.dataset.v.tobytes()
            assert got.dataset.f.tobytes() == want.dataset.f.tobytes()
            np.testing.assert_array_equal(got.dataset.labels, want.dataset.labels)

    def test_result_rows_round_trip(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        row = {
            "case_id": "c-1",
            "predicted": ["a=a1&b=b2"],
            "true_raps": ["a=a1"],
            "seconds": 0.25,
            "group": None,
            "shard": 3,
            "error": None,
        }
        with FleetStore(path) as store:
            store.append_result(7, "edge", row)
        with FleetStore(path, mode="r") as store:
            rows = store.results()
        assert rows == [dict(row, seq=7, tenant="edge")]

    def test_read_mode_rejects_appends_and_missing_files(self, tmp_path, cases):
        with pytest.raises(FileNotFoundError):
            FleetStore(tmp_path / "absent.log", mode="r")
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            store.append_case(0, "t", cases[0])
        with FleetStore(path, mode="r") as store:
            with pytest.raises(ValueError, match="read-only"):
                store.append_case(1, "t", cases[0])

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-log"
        path.write_bytes(b"definitely not " + b"x" * 32)
        with pytest.raises(ValueError, match="not a fleet segment log"):
            FleetStore(path)

    def test_rejects_future_versions(self, tmp_path):
        path = tmp_path / "future.log"
        path.write_bytes(struct.pack("<8sI", MAGIC, STORE_VERSION + 1))
        with pytest.raises(ValueError, match="version"):
            FleetStore(path)


class TestIndex:
    def test_sidecar_index_is_adopted_when_fresh(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            store.append_case(0, "t", cases[0])
        assert path.with_name("fleet.log.idx").exists()
        reopened = FleetStore(path, mode="r")
        assert len(reopened) == 1
        reopened.close()

    def test_stale_index_is_ignored_and_rebuilt(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            store.append_case(0, "t", cases[0])
        index_path = path.with_name("fleet.log.idx")
        payload = json.loads(index_path.read_text())
        payload["log_bytes"] = 1  # lie about the log size
        index_path.write_text(json.dumps(payload))
        with FleetStore(path, mode="r") as store:
            assert len(store.cases()) == 1  # rebuilt by scan

    def test_deleting_index_is_safe(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            for seq, case in enumerate(cases):
                store.append_case(seq, "t", case)
        path.with_name("fleet.log.idx").unlink()
        with FleetStore(path, mode="r") as store:
            assert len(store.cases()) == len(cases)


class TestRecovery:
    def _torn(self, tmp_path, cases, chop):
        path = tmp_path / "torn.log"
        with FleetStore(path) as store:
            store.append_case(0, "t", cases[0])
            store.append_case(1, "t", cases[1])
        path.with_name("torn.log.idx").unlink()
        data = path.read_bytes()
        path.write_bytes(data[:-chop])
        return path

    def test_torn_tail_is_dropped_with_warning(self, tmp_path, cases):
        path = self._torn(tmp_path, cases, chop=17)
        with pytest.warns(RuntimeWarning, match="torn"):
            store = FleetStore(path)
        decoded = store.cases()
        store.close()
        assert [seq for seq, __, __ in decoded] == [0]

    def test_recovered_log_accepts_new_appends(self, tmp_path, cases):
        path = self._torn(tmp_path, cases, chop=5)
        with pytest.warns(RuntimeWarning):
            store = FleetStore(path)
        store.append_case(1, "t", cases[1])
        store.close()
        with FleetStore(path, mode="r") as reopened:
            assert [seq for seq, __, __ in reopened.cases()] == [0, 1]

    def test_corrupt_middle_truncates_from_there(self, tmp_path, cases):
        path = tmp_path / "flip.log"
        with FleetStore(path) as store:
            store.append_case(0, "t", cases[0])
            second = store.append_case(1, "t", cases[1])
        path.with_name("flip.log.idx").unlink()
        data = bytearray(path.read_bytes())
        data[second + 20] ^= 0xFF  # flip a byte inside record 2
        path.write_bytes(bytes(data))
        with pytest.warns(RuntimeWarning):
            store = FleetStore(path, mode="r")
        assert [seq for seq, __, __ in store.cases()] == [0]
        store.close()


class TestReplayAndWarmStart:
    def test_replaying_a_run_reproduces_reports_bit_exactly(self, tmp_path, cases):
        path = tmp_path / "run.log"
        config = FleetConfig(mode="inline", k_from_truth=True)
        original = fleet_localize(
            RAPMiner(), cases, config=config, store=str(path)
        )
        replayed = replay_store(RAPMiner(), str(path), config=config)
        assert [r.case_id for r in replayed.results] == [
            r.case_id for r in original.results
        ]
        for got, want in zip(replayed.results, original.results):
            assert got.predicted == want.predicted
        # ... and both match the rows persisted during the original run.
        with FleetStore(path, mode="r") as store:
            persisted = store.results()
        for row, want in zip(persisted, original.results):
            assert row["predicted"] == [str(p) for p in want.predicted]
            assert row["error"] is None

    def test_last_cases_picks_highest_seq_per_tenant(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        with FleetStore(path) as store:
            store.append_case(0, "a", cases[0])
            store.append_case(1, "b", cases[1])
            store.append_case(2, "a", cases[2])
        with FleetStore(path, mode="r") as store:
            latest = store.last_cases()
        assert set(latest) == {"a", "b"}
        assert latest["a"][0] == 2
        assert latest["a"][1].case_id == cases[2].case_id
        assert latest["b"][0] == 1

    def test_warm_start_after_restart_skips_cold_builds(self, tmp_path, cases):
        from repro.data.dataset import FineGrainedDataset
        from repro.data.injection import LocalizationCase

        base = cases[0]

        def tick(case_id):
            ds = base.dataset
            fresh = FineGrainedDataset(
                ds.schema, ds.codes, ds.v.copy(), ds.f.copy(), ds.labels.copy()
            )
            return LocalizationCase(
                case_id=case_id,
                dataset=fresh,
                true_raps=base.true_raps,
                metadata=dict(base.metadata, tenant="t0"),
            )

        path = tmp_path / "day1.log"
        config = FleetConfig(mode="inline", k_from_truth=True, shards_per_layout=1)
        fleet_localize(RAPMiner(), [tick("day1")], config=config, store=str(path))

        # "Restart": a fresh supervisor primed from the persisted log.
        with obs.capture() as collector:
            supervisor = FleetSupervisor(RAPMiner(), config=config)
            with FleetStore(path, mode="r") as store:
                assert supervisor.warm_start(store) == 1
            for i in range(3):
                supervisor.submit(tick(f"day2-{i}"))
            evaluation = supervisor.drain()
        assert all(r.error is None for r in evaluation.results)
        builds = collector.metrics
        assert builds.value("fleet_engine_builds_total", {"outcome": "cold"}) == 0.0
        assert builds.value("fleet_engine_builds_total", {"outcome": "warm"}) == 3.0
        assert (
            builds.value("fleet_engine_builds_total", {"outcome": "warmstart"}) == 1.0
        )
        assert builds.value("fleet_warm_starts_total") == 1.0
        # The served answers equal a serial run of the same interval.
        want = run_cases(RAPMiner(), [tick("ref")], k_from_truth=True)
        for got in evaluation.results:
            assert got.predicted == want.results[0].predicted

    def test_warm_start_keeps_already_submitted_cases(self, tmp_path, cases):
        """Priming must not consume queued work.

        Regression: warm_start used to push a priming item through the
        scheduler and pop the home shard's queue head back — if a real
        case was submitted before the warm start, that case was silently
        discarded (and the next drain hung on its missing row).
        """
        from repro.data.dataset import FineGrainedDataset
        from repro.data.injection import LocalizationCase

        base = cases[0]

        def tick(case_id):
            ds = base.dataset
            fresh = FineGrainedDataset(
                ds.schema, ds.codes, ds.v.copy(), ds.f.copy(), ds.labels.copy()
            )
            return LocalizationCase(
                case_id=case_id,
                dataset=fresh,
                true_raps=base.true_raps,
                metadata=dict(base.metadata, tenant="t0"),
            )

        path = tmp_path / "day1.log"
        config = FleetConfig(mode="inline", k_from_truth=True, shards_per_layout=1)
        fleet_localize(RAPMiner(), [tick("day1")], config=config, store=str(path))

        supervisor = FleetSupervisor(RAPMiner(), config=config)
        supervisor.submit(tick("early-0"))  # queued before the warm start
        with FleetStore(path, mode="r") as store:
            assert supervisor.warm_start(store) == 1
        supervisor.submit(tick("early-1"))
        evaluation = supervisor.drain()
        assert [r.case_id for r in evaluation.results] == ["early-0", "early-1"]
        assert all(r.error is None for r in evaluation.results)


class TestStoreMetrics:
    def test_appends_and_recovery_are_counted(self, tmp_path, cases):
        path = tmp_path / "fleet.log"
        with obs.capture() as collector:
            with FleetStore(path) as store:
                store.append_case(0, "t", cases[0])
                store.append_result(0, "t", {"case_id": "x", "predicted": []})
        metrics = collector.metrics
        assert metrics.value("fleet_store_records_total", {"kind": "case"}) == 1.0
        assert metrics.value("fleet_store_records_total", {"kind": "result"}) == 1.0
        assert metrics.value("fleet_store_bytes_total") > 0
