"""Smoke tests: every example script must run clean and prove its claim.

Each example prints a verifiable success marker; these tests execute the
scripts in-process (fresh ``__main__`` namespace via ``runpy``) and check
the markers, so a public-API change that breaks an example fails CI.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv=None) -> str:
    script = EXAMPLES / name
    assert script.exists(), script
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "ranked root anomaly patterns:" in out
        assert "recovered" in out

    def test_cdn_incident_localization(self, capsys):
        out = run_example("cdn_incident_localization.py", capsys)
        assert "INCIDENT REPORT" in out
        assert "2/2 impacted scopes localized exactly" in out

    def test_online_monitoring(self, capsys):
        out = run_example("online_monitoring.py", capsys)
        assert "regional outage: (L5, *, *, *) -> localized" in out
        assert "MISSED" not in out

    def test_custom_dataset(self, capsys):
        out = run_example("custom_dataset.py", capsys)
        assert "(eu, *, payments)" in out
        assert "coverage: 3/3" in out

    def test_threshold_diagnostics(self, capsys):
        out = run_example("threshold_diagnostics.py", capsys)
        assert "failure breakdown for RAPMiner" in out
        assert "paired bootstrap" in out
        assert "significant" in out

    def test_method_comparison_fast(self, capsys):
        out = run_example("method_comparison.py", capsys, argv=["--seed", "2"])
        assert "[Fig. 8(a)]" in out
        assert "[Fig. 9(b)]" in out
        assert "RAPMiner" in out

    def test_parameter_tuning_fast(self, capsys):
        out = run_example("parameter_tuning.py", capsys, argv=["--seed", "2"])
        assert "[Table IV]" in out
        assert "[Table VI]" in out
        assert "efficiency improvement" in out
