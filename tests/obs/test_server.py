"""Live telemetry plane: scrape a real server during a real replay.

These tests bind :class:`~repro.obs.server.TelemetryServer` to an
ephemeral port (``port=0``) and exercise every route over actual HTTP,
with the heavyweight case scraping ``/metrics`` *while* a streaming
replay is feeding the capture — the deployment shape behind
``repro stream-localize --serve-metrics``.  ``make telemetry-smoke``
runs this file alone.
"""

import json
import re
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.delta import DeltaConfig
from repro.core.incremental import StreamingRAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, TelemetryServer
from repro.obs.slo import SLOTracker
from repro.service import replay_stream

CONFIG = RAPMinerConfig(enable_attribute_deletion=False)
PINNED = DeltaConfig(crossover=0.5)  # timing-independent path choice

#: A metric sample line: bare name, optional label set, one value.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (\+Inf|-Inf|NaN|-?\d+(\.\d+)?([eE][+-]?\d+)?)$"
)


def get(url: str):
    """``(status, content_type, body_bytes)`` — HTTP errors returned, not raised."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.headers.get("Content-Type"), response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers.get("Content-Type"), err.read()


def assert_valid_exposition(text: str) -> dict:
    """Validate Prometheus text 0.0.4 shape; returns ``{family: kind}``."""
    families = {}
    helped = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert name not in helped, f"duplicate HELP for {name}"
            helped.add(name)
        elif line.startswith("# TYPE "):
            __, ___, name, kind = line.split(" ", 3)
            assert name not in families, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram")
            families[name] = kind
        else:
            assert SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
            bare = line.split("{", 1)[0].split(" ", 1)[0]
            base = re.sub(r"_(bucket|sum|count)$", "", bare)
            assert bare in families or base in families, (
                f"sample {bare!r} has no preceding # TYPE"
            )
    return families


@pytest.fixture
def incident_ticks():
    """Four ticks of one persisted 2-RAP incident over a *fixed* background.

    Only the forecast lane of the RAP rows is redrawn per tick, so the
    changed-leaf fraction is low and ticks after the first take the
    patched path — the stream shape the delta session is built for.
    """
    sim = CDNSimulator(cdn_schema(6, 3, 3, 5), CDNSimulatorConfig(seed=31))
    rng = np.random.default_rng(31)
    background = sim.snapshot(100).to_dataset()
    raps = sample_raps(background, 2, rng, min_support=6)
    first, __ = inject_failures(background, raps, rng)
    rap_rows = np.flatnonzero(first.labels)
    ticks = [first]
    for __ in range(3):
        f = first.f.copy()
        f[rap_rows] = first.v[rap_rows] / rng.uniform(0.45, 0.65, rap_rows.size)
        ticks.append(
            FineGrainedDataset(first.schema, first.codes, first.v, f, first.labels)
        )
    return ticks


class TestLiveScrape:
    """The acceptance-shaped smoke: scrape a replay while it runs."""

    def test_scrape_during_replay(self, incident_ticks):
        tracker = SLOTracker(windows=(2, 8))
        with obs.capture() as collector:
            with TelemetryServer() as server:
                assert server.running
                assert server.port != 0  # the ephemeral port resolved
                scraped = []

                def spy_slo(outcome, registry=None):
                    SLOTracker.record(tracker, outcome, registry)
                    scraped.append(get(f"{server.url}/metrics"))

                # Scrape after every tick *during* the replay: the spy
                # rides the slo hook, so each scrape sees a mid-replay
                # registry under concurrent mutation.
                tracker_proxy = type("Spy", (), {"record": staticmethod(spy_slo)})()
                replay = replay_stream(
                    incident_ticks,
                    miner=StreamingRAPMiner(CONFIG, delta=PINNED),
                    slo=tracker_proxy,
                )
                assert len(replay.ticks) == len(incident_ticks)
                assert replay.patched_ticks >= 1  # the delta path engaged

                for status, content_type, __ in scraped:
                    assert status == 200
                    assert content_type == PROMETHEUS_CONTENT_TYPE
                final = scraped[-1][2].decode()
                families = assert_valid_exposition(final)
                assert any(f.startswith("delta_") for f in families)
                assert any(f.startswith("slo_") for f in families)
                assert "slo_burn_rate" in families
                assert families["slo_burn_rate"] == "gauge"
                assert "telemetry_requests_total" in families
                # The healthy replay burns no tick_success budget.
                assert 'slo_ticks_total{objective="tick_success",outcome="bad"} 0' in final
            assert not server.running
        assert collector.spans  # the replay traced under the capture

    def test_debug_routes_serve_spans_and_profile(self, incident_ticks):
        with obs.capture():
            with TelemetryServer() as server:
                replay_stream(
                    incident_ticks[:2], miner=StreamingRAPMiner(CONFIG, delta=PINNED)
                )
                status, content_type, body = get(f"{server.url}/debug/spans")
                assert status == 200 and content_type == "application/json"
                spans = json.loads(body)
                assert spans["count"] > 0
                assert spans["total_finished"] >= spans["count"]
                assert spans["ring_capacity"] == 256
                assert {"name", "span_id", "duration_s"} <= set(spans["spans"][0])

                status, __, body = get(f"{server.url}/debug/spans?limit=3")
                assert status == 200
                assert json.loads(body)["count"] == 3

                status, __, body = get(f"{server.url}/debug/profile")
                profile = json.loads(body)
                assert status == 200
                assert profile["source"] == "spans"
                assert profile["families"], "span-family table must be non-empty"
                top = profile["families"][0]
                assert {"name", "count", "self_s", "self_fraction"} <= set(top)

                status, __, body = get(f"{server.url}/debug/profile?top=1")
                assert len(json.loads(body)["families"]) == 1

    def test_candidates_identical_with_and_without_telemetry(self, incident_ticks):
        quiet = replay_stream(
            incident_ticks, miner=StreamingRAPMiner(CONFIG, delta=PINNED)
        )
        with obs.capture():
            with TelemetryServer() as server:
                get(f"{server.url}/metrics")
                loud = replay_stream(
                    incident_ticks,
                    miner=StreamingRAPMiner(CONFIG, delta=PINNED),
                    slo=SLOTracker(windows=(4,)),
                )
        assert [t.patterns for t in loud.ticks] == [t.patterns for t in quiet.ticks]
        assert [t.path for t in loud.ticks] == [t.path for t in quiet.ticks]


class TestRoutes:
    def test_healthz_up_and_vetoed(self):
        with TelemetryServer() as server:
            status, __, body = get(f"{server.url}/healthz")
            payload = json.loads(body)
            assert status == 200
            assert payload["status"] == "ok"
            assert payload["uptime_s"] >= 0.0
        with TelemetryServer(healthy=lambda: False) as server:
            status, __, body = get(f"{server.url}/healthz")
            assert status == 503
            assert json.loads(body)["status"] == "unhealthy"

    def test_healthz_dict_probe_is_echoed(self):
        with TelemetryServer(healthy=lambda: {"queue_depth": 3}) as server:
            status, __, body = get(f"{server.url}/healthz")
            payload = json.loads(body)
            assert status == 200  # a truthy dict is healthy
            assert payload["queue_depth"] == 3

    def test_readyz_defaults_to_collector_presence(self):
        with TelemetryServer() as server:
            status, __, body = get(f"{server.url}/readyz")
            assert status == 503
            assert json.loads(body)["ready"] is False
            with obs.capture():
                status, __, body = get(f"{server.url}/readyz")
                assert status == 200
                assert json.loads(body)["ready"] is True

    def test_readyz_probe_dict_decides_and_is_echoed(self):
        verdict = {"ready": False, "reason": "history 3/10"}
        with TelemetryServer(readiness=lambda: verdict) as server:
            status, __, body = get(f"{server.url}/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["ready"] is False
            assert payload["reason"] == "history 3/10"
            verdict["ready"] = True
            status, __, body = get(f"{server.url}/readyz")
            assert status == 200

    def test_metrics_without_collector_is_empty_not_error(self):
        with TelemetryServer() as server:
            status, content_type, body = get(f"{server.url}/metrics")
            assert status == 200
            assert content_type == PROMETHEUS_CONTENT_TYPE
            assert body == b""

    def test_debug_routes_without_collector_are_503(self):
        with TelemetryServer() as server:
            assert get(f"{server.url}/debug/spans")[0] == 503
            assert get(f"{server.url}/debug/profile")[0] == 503

    def test_unknown_route_404_lists_routes(self):
        with TelemetryServer() as server:
            status, __, body = get(f"{server.url}/nope")
            payload = json.loads(body)
            assert status == 404
            assert "/metrics" in payload["routes"]
            assert "/healthz" in payload["routes"]

    def test_requests_counted_per_route_and_status(self):
        with obs.capture() as collector:
            with TelemetryServer() as server:
                get(f"{server.url}/metrics")
                get(f"{server.url}/metrics")
                get(f"{server.url}/nope")
            counters = {
                (m.labels["route"], m.labels["status"]): m.value
                for m in collector.metrics.collect()
                if m.name == "telemetry_requests_total"
            }
        assert counters[("/metrics", "200")] == 2
        assert counters[("/nope", "404")] == 1

    def test_pinned_collector_survives_capture_exit(self):
        with obs.capture() as collector:
            obs.inc("pinned_total")
        with TelemetryServer(collector=collector) as server:
            status, __, body = get(f"{server.url}/metrics")
            assert status == 200
            assert b"pinned_total 1" in body

    def test_profile_source_ring(self):
        with obs.capture():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
            with TelemetryServer(profile_source="ring") as server:
                __, ___, body = get(f"{server.url}/debug/profile")
                payload = json.loads(body)
        assert payload["source"] == "ring"
        assert {p["name"] for p in payload["families"]} == {"outer", "inner"}

    def test_profile_source_validated(self):
        with pytest.raises(ValueError, match="profile_source"):
            TelemetryServer(profile_source="flamegraph")

    def test_double_start_rejected_and_stop_idempotent(self):
        server = TelemetryServer().start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()
        finally:
            server.stop()
        server.stop()  # no-op on a stopped server
        assert not server.running
