"""Tests for Prometheus-text and JSONL exposition."""

import math

import pytest

from repro import obs
from repro.obs.export import (
    escape_help,
    escape_label_value,
    prometheus_text,
    read_jsonl,
    to_jsonl_lines,
)
from repro.obs.metrics import MetricRegistry


class TestEscaping:
    def test_label_value_escapes_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_help_escapes_backslash_and_newline_only(self):
        assert escape_help('say "hi"\\\n') == 'say "hi"\\\\\\n'

    def test_escaped_label_round_trips_through_exposition(self):
        registry = MetricRegistry()
        registry.counter("odd_total", {"key": 'value with "quotes"\nand newline'}).inc()
        text = prometheus_text(registry)
        assert 'key="value with \\"quotes\\"\\nand newline"' in text
        assert "\nand newline" not in text.split("# TYPE")[1].splitlines()[1]


class TestPrometheusText:
    def test_family_headers_render_once(self):
        registry = MetricRegistry()
        registry.counter("engine_aggregate_total", {"path": "cache_hit"}).inc(3)
        registry.counter("engine_aggregate_total", {"path": "rollup"}).inc(1)
        text = prometheus_text(registry)
        assert text.count("# HELP engine_aggregate_total") == 1
        assert text.count("# TYPE engine_aggregate_total counter") == 1
        assert 'engine_aggregate_total{path="cache_hit"} 3' in text
        assert 'engine_aggregate_total{path="rollup"} 1' in text
        assert text.endswith("\n")

    def test_gauge_and_float_rendering(self):
        registry = MetricRegistry()
        registry.gauge("coverage").set(0.5)
        text = prometheus_text(registry)
        assert "# TYPE coverage gauge" in text
        assert "coverage 0.5" in text

    def test_histogram_expands_to_bucket_sum_count(self):
        registry = MetricRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(10.0)
        text = prometheus_text(registry)
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_sum 10.05" in text
        assert "latency_seconds_count 2" in text

    def test_defaults_to_active_collector(self):
        assert prometheus_text() == ""
        with obs.capture():
            obs.inc("miner_runs_total")
            assert "miner_runs_total 1" in prometheus_text()

    def test_every_catalogued_metric_renders(self):
        # The acceptance bar: after an instrumented run, prometheus_text()
        # renders every registered metric with its catalogue help line.
        registry = MetricRegistry()
        for name in obs.METRIC_HELP:
            registry.counter(name).inc()
        text = prometheus_text(registry)
        for name, help_text in obs.METRIC_HELP.items():
            assert f"# HELP {name} {escape_help(help_text)}" in text
            assert f"\n{name} 1" in "\n" + text


class TestJsonl:
    def test_round_trip_preserves_spans_and_metrics(self, tmp_path):
        with obs.capture() as collector:
            with obs.span("outer", layer=1):
                with obs.span("inner", ratio=0.25, names=("a", "b")):
                    pass
            obs.inc("miner_runs_total")
            obs.set_gauge("depth", 2)
            obs.observe("latency", 0.42)
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector, str(path))
        records = read_jsonl(str(path))

        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["n_spans"] == 2
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["attributes"] == {"ratio": 0.25, "names": ["a", "b"]}
        counters = {r["name"]: r for r in records if r["type"] == "counter"}
        assert counters["miner_runs_total"]["value"] == 1.0
        gauges = {r["name"]: r for r in records if r["type"] == "gauge"}
        assert gauges["depth"]["value"] == 2.0
        histograms = {r["name"]: r for r in records if r["type"] == "histogram"}
        assert histograms["latency"]["count"] == 1

    def test_non_finite_and_exotic_attributes_serialize(self):
        with obs.capture() as collector:
            with obs.span("odd", infinite=math.inf, obj=object()):
                pass
        lines = list(to_jsonl_lines(collector))
        assert len(lines) == 2  # meta + one span, all JSON-parseable
        import json

        span = json.loads(lines[1])
        assert span["attributes"]["infinite"] == "inf"
        assert isinstance(span["attributes"]["obj"], str)
