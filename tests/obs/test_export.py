"""Tests for Prometheus-text and JSONL exposition."""

import math

import pytest

from repro import obs
from repro.obs.export import (
    escape_help,
    escape_label_value,
    prometheus_text,
    read_jsonl,
    to_jsonl_lines,
)
from repro.obs.metrics import MetricRegistry


def unescape_label_value(value: str) -> str:
    """Inverse of ``escape_label_value``, as a Prometheus parser applies it."""
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            out.append({"n": "\n", '"': '"', "\\": "\\"}[value[i + 1]])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


class TestEscaping:
    def test_label_value_escapes_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_help_escapes_backslash_and_newline_only(self):
        assert escape_help('say "hi"\\\n') == 'say "hi"\\\\\\n'

    def test_escaped_label_round_trips_through_exposition(self):
        registry = MetricRegistry()
        registry.counter("odd_total", {"key": 'value with "quotes"\nand newline'}).inc()
        text = prometheus_text(registry)
        assert 'key="value with \\"quotes\\"\\nand newline"' in text
        assert "\nand newline" not in text.split("# TYPE")[1].splitlines()[1]

    @pytest.mark.parametrize(
        "raw",
        [
            'value with "quotes"',
            "trailing backslash\\",
            "\\n literal, then\nreal newline",
            '\\"already escaped-looking\\"',
            "\\\\double\\\\",
            "",
        ],
    )
    def test_escape_unescape_round_trip(self, raw):
        assert unescape_label_value(escape_label_value(raw)) == raw

    def test_adversarial_label_stays_on_one_sample_line(self):
        # A newline that escaped escaping would split the sample in two
        # and corrupt every series below it — the classic exposition bug.
        registry = MetricRegistry()
        registry.counter("odd_total", {"key": 'a\n# TYPE fake counter\nb"'}).inc()
        sample_lines = [
            line
            for line in prometheus_text(registry).splitlines()
            if not line.startswith("#")
        ]
        assert len(sample_lines) == 1
        name, quoted = sample_lines[0].split("{key=", 1)
        assert name == "odd_total"
        assert unescape_label_value(quoted[1 : quoted.rindex('"')]) == (
            'a\n# TYPE fake counter\nb"'
        )


class TestPrometheusText:
    def test_family_headers_render_once(self):
        registry = MetricRegistry()
        registry.counter("engine_aggregate_total", {"path": "cache_hit"}).inc(3)
        registry.counter("engine_aggregate_total", {"path": "rollup"}).inc(1)
        text = prometheus_text(registry)
        assert text.count("# HELP engine_aggregate_total") == 1
        assert text.count("# TYPE engine_aggregate_total counter") == 1
        assert 'engine_aggregate_total{path="cache_hit"} 3' in text
        assert 'engine_aggregate_total{path="rollup"} 1' in text
        assert text.endswith("\n")

    def test_gauge_and_float_rendering(self):
        registry = MetricRegistry()
        registry.gauge("coverage").set(0.5)
        text = prometheus_text(registry)
        assert "# TYPE coverage gauge" in text
        assert "coverage 0.5" in text

    def test_histogram_expands_to_bucket_sum_count(self):
        registry = MetricRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(10.0)
        text = prometheus_text(registry)
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_sum 10.05" in text
        assert "latency_seconds_count 2" in text

    def test_defaults_to_active_collector(self):
        assert prometheus_text() == ""
        with obs.capture():
            obs.inc("miner_runs_total")
            assert "miner_runs_total 1" in prometheus_text()

    def test_non_finite_gauges_render_prometheus_spellings(self):
        # json.dumps would emit Infinity/NaN (invalid); the text format
        # has its own spellings and a scraper rejects anything else.
        registry = MetricRegistry()
        registry.gauge("hot", {"sign": "pos"}).set(math.inf)
        registry.gauge("hot", {"sign": "neg"}).set(-math.inf)
        registry.gauge("hot", {"sign": "nan"}).set(math.nan)
        text = prometheus_text(registry)
        assert 'hot{sign="pos"} +Inf' in text
        assert 'hot{sign="neg"} -Inf' in text
        assert 'hot{sign="nan"} NaN' in text
        assert "Infinity" not in text
        assert "inf" not in text.replace("+Inf", "").replace("-Inf", "")

    def test_non_finite_histogram_sum_renders(self):
        registry = MetricRegistry()
        histogram = registry.histogram("weird", buckets=(1.0,))
        histogram.observe(math.inf)
        text = prometheus_text(registry)
        assert "weird_sum +Inf" in text
        assert 'weird_bucket{le="+Inf"} 1' in text

    def test_every_catalogued_metric_renders(self):
        # The acceptance bar: after an instrumented run, prometheus_text()
        # renders every registered metric with its catalogue help line.
        registry = MetricRegistry()
        for name in obs.METRIC_HELP:
            registry.counter(name).inc()
        text = prometheus_text(registry)
        for name, help_text in obs.METRIC_HELP.items():
            assert f"# HELP {name} {escape_help(help_text)}" in text
            assert f"\n{name} 1" in "\n" + text


class TestJsonl:
    def test_round_trip_preserves_spans_and_metrics(self, tmp_path):
        with obs.capture() as collector:
            with obs.span("outer", layer=1):
                with obs.span("inner", ratio=0.25, names=("a", "b")):
                    pass
            obs.inc("miner_runs_total")
            obs.set_gauge("depth", 2)
            obs.observe("latency", 0.42)
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector, str(path))
        records = read_jsonl(str(path))

        meta = records[0]
        assert meta["type"] == "meta"
        assert meta["n_spans"] == 2
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["attributes"] == {"ratio": 0.25, "names": ["a", "b"]}
        counters = {r["name"]: r for r in records if r["type"] == "counter"}
        assert counters["miner_runs_total"]["value"] == 1.0
        gauges = {r["name"]: r for r in records if r["type"] == "gauge"}
        assert gauges["depth"]["value"] == 2.0
        histograms = {r["name"]: r for r in records if r["type"] == "histogram"}
        assert histograms["latency"]["count"] == 1

    def test_non_finite_and_exotic_attributes_serialize(self):
        with obs.capture() as collector:
            with obs.span("odd", infinite=math.inf, obj=object()):
                pass
        lines = list(to_jsonl_lines(collector))
        assert len(lines) == 2  # meta + one span, all JSON-parseable
        import json

        span = json.loads(lines[1])
        assert span["attributes"]["infinite"] == "inf"
        assert isinstance(span["attributes"]["obj"], str)


class TestReadJsonlTruncation:
    """A crash mid-write leaves a half line: recoverable, not corrupt."""

    def write_trace(self, tmp_path):
        with obs.capture() as collector:
            with obs.span("outer"):
                pass
            obs.inc("miner_runs_total")
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl(collector, str(path))
        return path

    def test_truncated_final_line_warns_and_keeps_prefix(self, tmp_path):
        path = self.write_trace(tmp_path)
        full = read_jsonl(str(path))
        text = path.read_text()
        path.write_text(text[: len(text) - len('runs_total", "labels')])
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            truncated = read_jsonl(str(path))
        assert truncated == full[:-1]  # everything but the cut record

    def test_warning_reports_line_number_and_kept_count(self, tmp_path):
        path = self.write_trace(tmp_path)
        n_lines = len(path.read_text().splitlines())
        path.write_text(path.read_text()[:-3])
        with pytest.warns(RuntimeWarning, match=rf"line {n_lines} .kept {n_lines - 1}"):
            read_jsonl(str(path))

    def test_truncated_line_with_trailing_blanks_still_recovers(self, tmp_path):
        path = self.write_trace(tmp_path)
        path.write_text(path.read_text()[:-3] + "\n\n  \n")
        with pytest.warns(RuntimeWarning, match="truncated final line"):
            records = read_jsonl(str(path))
        assert len(records) >= 1

    def test_mid_file_corruption_still_raises(self, tmp_path):
        import json

        path = self.write_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[0] = lines[0][:-5]  # damage a line that is *not* the tail
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(str(path))

    def test_clean_file_emits_no_warning(self, tmp_path):
        import warnings

        path = self.write_trace(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = read_jsonl(str(path))
        assert records[0]["type"] == "meta"
