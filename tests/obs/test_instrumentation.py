"""Integration: the instrumented mining path under a capture.

The cardinal rule of the telemetry subsystem is that observation never
changes the observed computation — candidates, stats and rankings must be
bit-identical with tracing on and off — and that an instrumented run
actually records the spans and counters the docs promise.
"""

import pytest

from repro import obs
from repro.core.classification_power import delete_redundant_attributes
from repro.core.incremental import IncrementalRAPMiner
from repro.core.miner import RAPMiner
from repro.core.search import layerwise_topdown_search
from repro.obs import report as obs_report


@pytest.fixture
def indices(example_dataset):
    return list(range(example_dataset.schema.n_attributes))


class TestSearchUnchangedByTracing:
    def test_candidates_bit_identical_on_vs_off(self, example_dataset, indices):
        baseline = layerwise_topdown_search(example_dataset, indices, t_conf=0.8)
        with obs.capture():
            traced = layerwise_topdown_search(example_dataset, indices, t_conf=0.8)
        after = layerwise_topdown_search(example_dataset, indices, t_conf=0.8)

        assert traced.candidates == baseline.candidates
        assert traced.stats == baseline.stats
        assert after.candidates == baseline.candidates
        assert after.stats == baseline.stats

    def test_miner_result_bit_identical_on_vs_off(self, example_dataset):
        miner = RAPMiner()
        baseline = miner.run(example_dataset)
        with obs.capture():
            traced = miner.run(example_dataset)
        assert traced.candidates == baseline.candidates
        assert traced.stats == baseline.stats


class TestSearchSpans:
    def test_run_and_layer_spans_with_attributes(self, example_dataset, indices):
        with obs.capture() as collector:
            outcome = layerwise_topdown_search(example_dataset, indices, t_conf=0.8)

        runs = collector.find_spans("search.run")
        assert len(runs) == 1
        run = runs[0]
        assert run.attributes["n_attributes"] == len(indices)
        assert run.attributes["n_candidates"] == len(outcome.candidates)
        assert run.attributes["n_cuboids"] == outcome.stats.n_cuboids_visited
        assert run.attributes["stop_reason"] in {
            "coverage_early_stop",
            "lattice_exhausted",
            "max_layer_reached",
        }
        assert run.attributes["coverage_fraction"] == pytest.approx(1.0)

        layers = collector.find_spans("search.layer")
        assert len(layers) == outcome.stats.deepest_layer_visited
        assert all(layer.parent_id == run.span_id for layer in layers)
        totals = sum(layer.attributes["n_cuboids"] for layer in layers)
        assert totals == outcome.stats.n_cuboids_visited
        assert sum(l.attributes["n_candidates"] for l in layers) == len(
            outcome.candidates
        )

    def test_search_counters_match_stats(self, example_dataset, indices):
        with obs.capture() as collector:
            outcome = layerwise_topdown_search(example_dataset, indices, t_conf=0.8)
        metrics = collector.metrics
        assert metrics.value("search_cuboids_total") == outcome.stats.n_cuboids_visited
        assert (
            metrics.value("search_combinations_total")
            == outcome.stats.n_combinations_evaluated
        )
        assert metrics.value("search_candidates_total") == len(outcome.candidates)
        if outcome.stats.early_stopped:
            assert metrics.value("search_early_stops_total") == 1.0

    def test_no_anomalous_leaves_short_circuits(self, example_dataset, indices):
        quiet = example_dataset.with_labels(example_dataset.labels * False)
        with obs.capture() as collector:
            outcome = layerwise_topdown_search(quiet, indices, t_conf=0.8)
        assert outcome.candidates == []
        run = collector.find_spans("search.run")[0]
        assert run.attributes["stop_reason"] == "no_anomalous_leaves"


class TestStageSpans:
    def test_cp_span_records_decisions(self, example_dataset):
        with obs.capture() as collector:
            result = delete_redundant_attributes(example_dataset, t_cp=0.005)
        span = collector.find_spans("cp.attribute_deletion")[0]
        assert span.attributes["kept"] == list(result.kept_names(example_dataset))
        kept = collector.metrics.value("cp_attributes_total", {"decision": "kept"})
        deleted = collector.metrics.value("cp_attributes_total", {"decision": "deleted"})
        assert kept == len(result.kept_indices)
        assert deleted == len(result.deleted_indices)

    def test_miner_span_nests_stages(self, example_dataset):
        with obs.capture() as collector:
            result = RAPMiner().run(example_dataset)
        miner_span = collector.find_spans("miner.run")[0]
        assert miner_span.attributes["outcome"] == "localized"
        assert miner_span.attributes["n_candidates"] == len(result.candidates)
        children = {s.name for s in collector.children_of(miner_span)}
        assert "cp.attribute_deletion" in children
        assert "search.run" in children
        assert collector.metrics.value("miner_runs_total") == 1.0

    def test_incremental_counters_by_path(self, example_dataset):
        miner = IncrementalRAPMiner()
        with obs.capture() as collector:
            first = miner.run(example_dataset)
            second = miner.run(example_dataset)
        assert second.candidates == first.candidates
        metrics = collector.metrics
        assert metrics.family_total("incremental_runs_total") == 2.0
        assert metrics.family_total("incremental_prescreen_total") >= 1.0
        spans = collector.find_spans("incremental.run")
        assert len(spans) == 2
        assert spans[0].attributes["prescreen"] == "no_previous"


class TestReportRendering:
    def test_render_summary_lists_spans_and_metrics(self, example_dataset):
        with obs.capture() as collector:
            RAPMiner().run(example_dataset)
        text = obs_report.render_summary(collector)
        assert "spans:" in text
        assert "miner.run" in text
        assert "search.run" in text
        assert "metrics:" in text
        assert "miner_runs_total" in text

    def test_span_accumulators_group_by_name(self, example_dataset, indices):
        with obs.capture() as collector:
            layerwise_topdown_search(example_dataset, indices, t_conf=0.8)
            layerwise_topdown_search(example_dataset, indices, t_conf=0.8)
        accumulators = obs_report.span_accumulators(collector)
        assert accumulators["search.run"].n == 2
        assert accumulators["search.run"].percentile(50) >= 0.0

    def test_empty_capture_renders_placeholder(self):
        with obs.capture() as collector:
            pass
        assert "empty capture" in obs_report.render_summary(collector)
