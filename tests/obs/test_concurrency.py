"""Scrape-under-mutation guarantees: no torn reads, bounded span memory.

The telemetry server reads the registry and the span ring from its own
threads while the engine's fan-out mutates them.  These tests hammer
both sides from real threads and assert the reader-visible invariants:
a histogram never tears (``sum(buckets) == count``), an exposition never
contains a malformed line, and the recent-span ring holds at most its
capacity no matter how many spans finish.
"""

import threading

import pytest

from repro import obs
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import Collector, SpanRing, Span

N_THREADS = 4
OPS_PER_THREAD = 2_000


def hammer(registry, barrier):
    barrier.wait()
    counter = registry.counter("hits_total", {"path": "warm"})
    histogram = registry.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
    gauge = registry.gauge("depth")
    for i in range(OPS_PER_THREAD):
        counter.inc()
        # Stay within the largest bound so every sample lands in a finite
        # bucket and sum(bucket_counts) == count is a readable invariant.
        histogram.observe((i % 90) / 1000.0)
        gauge.set(i)


def run_threads(target, n=N_THREADS, args=()):
    barrier = threading.Barrier(n)
    threads = [
        threading.Thread(target=target, args=(*args, barrier)) for __ in range(n)
    ]
    for t in threads:
        t.start()
    return threads


class TestRegistryUnderMutation:
    def test_snapshot_never_tears_histograms(self):
        registry = MetricRegistry()
        threads = run_threads(hammer, args=(registry,))
        torn = []
        for __ in range(50):
            for entry in registry.snapshot():
                if entry["kind"] == "histogram":
                    if sum(entry["bucket_counts"]) != entry["count"]:
                        torn.append(entry)
        for t in threads:
            t.join()
        assert torn == []
        final = registry.get("latency_seconds")
        assert final.count == N_THREADS * OPS_PER_THREAD
        assert registry.value("hits_total", {"path": "warm"}) == N_THREADS * OPS_PER_THREAD

    def test_prometheus_text_is_wellformed_mid_mutation(self):
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|NaN|-?[\d.eE+-]+)$"
        )
        registry = MetricRegistry()
        threads = run_threads(hammer, args=(registry,))
        for __ in range(25):
            for line in prometheus_text(registry).splitlines():
                if line and not line.startswith("#"):
                    assert sample.match(line), f"malformed mid-mutation: {line!r}"
        for t in threads:
            t.join()
        # The final scrape's histogram rows are internally consistent.
        text = prometheus_text(registry)
        count = int(text.split("latency_seconds_count ", 1)[1].splitlines()[0])
        inf_bucket = int(
            text.split('latency_seconds_bucket{le="+Inf"} ', 1)[1].splitlines()[0]
        )
        assert count == inf_bucket == N_THREADS * OPS_PER_THREAD

    def test_merge_while_mutating_keeps_totals(self):
        parent = MetricRegistry()
        worker = MetricRegistry()
        worker.counter("hits_total", {"path": "warm"}).inc(7)
        snapshot = worker.snapshot()

        def merger(registry, barrier):
            barrier.wait()
            for __ in range(200):
                registry.merge(snapshot)

        threads = run_threads(merger, n=2, args=(parent,))
        for t in threads:
            t.join()
        assert parent.value("hits_total", {"path": "warm"}) == 2 * 200 * 7


class TestSpanRingBounds:
    def test_memory_stays_bounded_at_capacity(self):
        ring = SpanRing(capacity=8)
        for i in range(1000):
            ring.append(
                Span(f"s{i}", span_id=i, parent_id=None, start_unix=0.0, start=0.0)
            )
        assert len(ring) == 8
        assert ring.total_appended == 1000
        assert len(ring._slots) == 8  # the backing store itself never grows
        names = [s.name for s in ring.snapshot()]
        assert names == [f"s{i}" for i in range(992, 1000)]  # newest, oldest first

    def test_limit_returns_newest(self):
        ring = SpanRing(capacity=8)
        for i in range(10):
            ring.append(Span(f"s{i}", i, None, 0.0, 0.0))
        assert [s.name for s in ring.snapshot(limit=3)] == ["s7", "s8", "s9"]
        assert [s.name for s in ring.snapshot(limit=99)] == [
            f"s{i}" for i in range(2, 10)
        ]

    def test_partial_fill_snapshots_in_order(self):
        ring = SpanRing(capacity=8)
        for i in range(3):
            ring.append(Span(f"s{i}", i, None, 0.0, 0.0))
        assert len(ring) == 3
        assert [s.name for s in ring.snapshot()] == ["s0", "s1", "s2"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanRing(capacity=0)

    def test_concurrent_appends_never_exceed_capacity(self):
        ring = SpanRing(capacity=16)

        def producer(ring, barrier):
            barrier.wait()
            for i in range(OPS_PER_THREAD):
                ring.append(Span("s", i, None, 0.0, 0.0))

        threads = run_threads(producer, args=(ring,))
        sizes = [len(ring.snapshot()) for __ in range(100)]
        for t in threads:
            t.join()
        assert max(sizes) <= 16
        assert len(ring) == 16
        assert ring.total_appended == N_THREADS * OPS_PER_THREAD

    def test_collector_feeds_ring_and_spans_list(self):
        with obs.capture() as collector:
            for __ in range(5):
                with obs.span("tick"):
                    pass
        assert len(collector.spans) == 5
        assert len(collector.recent) == 5
        assert collector.recent.total_appended == 5

    def test_collector_ring_capacity_configurable(self):
        collector = Collector(ring_capacity=2)
        previous = obs.install(collector)
        try:
            for i in range(4):
                with obs.span(f"s{i}"):
                    pass
        finally:
            obs.uninstall(previous)
        assert len(collector.spans) == 4  # the full record is untouched
        assert [s.name for s in collector.recent.snapshot()] == ["s2", "s3"]
