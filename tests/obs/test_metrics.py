"""Tests for the counter/gauge/histogram registry."""

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, METRIC_HELP, Histogram, MetricRegistry


class TestCounter:
    def test_get_or_create_returns_same_series(self):
        registry = MetricRegistry()
        a = registry.counter("requests_total", {"path": "hit"})
        b = registry.counter("requests_total", {"path": "hit"})
        assert a is b
        a.inc()
        b.inc(2)
        assert a.value == 3.0

    def test_labels_distinguish_series(self):
        registry = MetricRegistry()
        registry.counter("requests_total", {"path": "hit"}).inc(5)
        registry.counter("requests_total", {"path": "miss"}).inc(1)
        assert registry.value("requests_total", {"path": "hit"}) == 5.0
        assert registry.value("requests_total", {"path": "miss"}) == 1.0
        assert registry.family_total("requests_total") == 6.0

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricRegistry().counter("ups_total").inc(-1)

    def test_catalogue_fills_help_text(self):
        registry = MetricRegistry()
        counter = registry.counter("engine_aggregate_total")
        assert counter.help == METRIC_HELP["engine_aggregate_total"]


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricRegistry().gauge("depth")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_fills_cumulative_buckets(self):
        histogram = Histogram("latency", None, "", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)
        assert histogram.cumulative_buckets() == [(0.1, 1), (1.0, 2)]

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", None, "", buckets=())


class TestRegistry:
    def test_type_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("thing_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing_total", {"other": "labels"})

    def test_value_on_histogram_raises(self):
        registry = MetricRegistry()
        registry.histogram("latency").observe(0.2)
        with pytest.raises(TypeError):
            registry.value("latency")

    def test_value_of_unregistered_series_is_zero(self):
        assert MetricRegistry().value("never_touched_total") == 0.0

    def test_as_flat_dict_renders_labels(self):
        registry = MetricRegistry()
        registry.counter("hits_total", {"path": "warm"}).inc(2)
        registry.gauge("depth").set(1.5)
        assert registry.as_flat_dict() == {
            'hits_total{path="warm"}': 2.0,
            "depth": 1.5,
        }

    def test_collect_groups_families_adjacently(self):
        registry = MetricRegistry()
        registry.counter("b_total", {"x": "1"})
        registry.counter("a_total")
        registry.counter("b_total", {"x": "2"})
        assert [m.name for m in registry.collect()] == ["a_total", "b_total", "b_total"]


class TestRunIsolation:
    def test_consecutive_captures_start_from_zero(self):
        with obs.capture() as first:
            obs.inc("miner_runs_total")
            obs.inc("miner_runs_total")
        with obs.capture() as second:
            obs.inc("miner_runs_total")
        assert first.metrics.value("miner_runs_total") == 2.0
        assert second.metrics.value("miner_runs_total") == 1.0

    def test_nested_capture_does_not_leak_into_outer(self):
        with obs.capture() as outer:
            obs.inc("service_intervals_total")
            with obs.capture() as inner:
                obs.inc("service_intervals_total", 5)
            obs.inc("service_intervals_total")
        assert outer.metrics.value("service_intervals_total") == 2.0
        assert inner.metrics.value("service_intervals_total") == 5.0


class TestSnapshotMerge:
    def _worker_registry(self):
        registry = MetricRegistry()
        registry.counter("requests_total", {"path": "hit"}).inc(5)
        registry.counter("requests_total", {"path": "miss"}).inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.05)
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
        return registry

    def test_snapshot_is_plain_data(self):
        import pickle

        snapshot = self._worker_registry().snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot
        kinds = {entry["kind"] for entry in snapshot}
        assert kinds == {"counter", "gauge", "histogram"}

    def test_merge_accumulates_counters_and_histograms(self):
        parent = self._worker_registry()
        parent.merge(self._worker_registry().snapshot())
        assert parent.value("requests_total", {"path": "hit"}) == 10.0
        assert parent.value("requests_total", {"path": "miss"}) == 4.0
        assert parent.family_total("requests_total") == 14.0
        histogram = parent.get("latency_seconds")
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(1.1)
        assert histogram.cumulative_buckets() == [(0.1, 2), (1.0, 4)]

    def test_merge_into_empty_registry_creates_series(self):
        parent = MetricRegistry()
        snapshot = self._worker_registry().snapshot()
        parent.merge(snapshot)
        assert parent.snapshot() == snapshot

    def test_gauge_merge_is_last_write(self):
        parent = MetricRegistry()
        parent.gauge("depth").set(3)
        worker = MetricRegistry()
        worker.gauge("depth").set(9)
        parent.merge(worker.snapshot())
        assert parent.value("depth") == 9.0

    def test_merge_preserves_help_text(self):
        worker = MetricRegistry()
        worker.counter("engine_aggregate_total", {"path": "cold"}).inc()
        parent = MetricRegistry()
        parent.merge(worker.snapshot())
        merged = parent.get("engine_aggregate_total", {"path": "cold"})
        assert merged.help == METRIC_HELP["engine_aggregate_total"]

    def test_histogram_bounds_mismatch_rejected(self):
        worker = MetricRegistry()
        worker.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.2)
        parent = MetricRegistry()
        parent.histogram("latency_seconds", buckets=(0.5, 2.0)).observe(0.2)
        with pytest.raises(ValueError):
            parent.merge(worker.snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricRegistry().merge([{"kind": "summary", "name": "x", "value": 1.0}])


class TestMergeConflicts:
    """Family conflicts resolve first-writer-wins, counted — never raised."""

    def test_kind_conflict_drops_entry_and_counts(self):
        parent = MetricRegistry()
        parent.counter("thing_total").inc(3)
        worker = MetricRegistry()
        worker.gauge("thing_total").set(9)  # misregistered in the worker
        parent.merge(worker.snapshot())
        # First writer (the counter) wins; the gauge entry is dropped whole.
        assert parent.value("thing_total") == 3.0
        assert parent._kinds["thing_total"] == "counter"
        assert (
            parent.value("parallel_merge_conflicts_total", {"reason": "kind"}) == 1.0
        )

    def test_help_conflict_merges_values_under_first_help(self):
        parent = MetricRegistry()
        parent.counter("thing_total", help_text="the real help").inc(1)
        worker = MetricRegistry()
        worker.counter(
            "thing_total", {"path": "warm"}, help_text="a drifted help"
        ).inc(5)
        parent.merge(worker.snapshot())
        # Values survive the conflict; help stays the first writer's.
        assert parent.value("thing_total", {"path": "warm"}) == 5.0
        assert parent.get("thing_total", {"path": "warm"}).help == "the real help"
        assert (
            parent.value("parallel_merge_conflicts_total", {"reason": "help"}) == 1.0
        )

    def test_conflicting_family_renders_one_help_line(self):
        from repro.obs.export import prometheus_text

        parent = MetricRegistry()
        parent.counter("thing_total", help_text="the real help").inc()
        worker = MetricRegistry()
        worker.counter("thing_total", {"path": "x"}, help_text="drifted").inc()
        parent.merge(worker.snapshot())
        text = prometheus_text(parent)
        assert text.count("# HELP thing_total") == 1
        assert "# HELP thing_total the real help" in text
        assert "drifted" not in text

    def test_matching_families_merge_without_conflict_counts(self):
        parent = MetricRegistry()
        parent.counter("engine_aggregate_total").inc()
        parent.merge(parent.snapshot())
        assert parent.get("parallel_merge_conflicts_total", {"reason": "kind"}) is None
        assert parent.get("parallel_merge_conflicts_total", {"reason": "help"}) is None

    def test_conflicts_accumulate_across_merges(self):
        parent = MetricRegistry()
        parent.counter("thing_total").inc()
        worker = MetricRegistry()
        worker.gauge("thing_total").set(1)
        snapshot = worker.snapshot()
        parent.merge(snapshot)
        parent.merge(snapshot)
        assert (
            parent.value("parallel_merge_conflicts_total", {"reason": "kind"}) == 2.0
        )


class TestFamilyHelp:
    def test_first_registration_pins_family_help(self):
        registry = MetricRegistry()
        registry.counter("thing_total", {"a": "1"}, help_text="first")
        second = registry.counter("thing_total", {"a": "2"}, help_text="second")
        assert second.help == "first"

    def test_catalogue_fills_family_help_for_later_series(self):
        registry = MetricRegistry()
        registry.counter("engine_aggregate_total", {"path": "rollup"})
        later = registry.counter("engine_aggregate_total", {"path": "cache_hit"})
        assert later.help == METRIC_HELP["engine_aggregate_total"]
