"""Tests for spans, the collector, and capture lifetimes."""

import pytest

from repro import obs
from repro.obs import trace


class TestSpanNesting:
    def test_parent_child_linkage(self):
        with obs.capture() as collector:
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_siblings_share_parent(self):
        with obs.capture() as collector:
            with obs.span("parent") as parent:
                with obs.span("first"):
                    pass
                with obs.span("second"):
                    pass
        first, second = collector.find_spans("first")[0], collector.find_spans("second")[0]
        assert first.parent_id == parent.span_id
        assert second.parent_id == parent.span_id
        assert collector.children_of(parent) == [first, second]

    def test_completion_order_is_depth_first(self):
        # Children finish before their parents, so completion order is the
        # post-order walk of the span tree.
        with obs.capture() as collector:
            with obs.span("a"):
                with obs.span("b"):
                    pass
                with obs.span("c"):
                    pass
        assert [s.name for s in collector.spans] == ["b", "c", "a"]

    def test_current_span_tracks_with_structure(self):
        assert obs.current_span() is None
        with obs.capture():
            with obs.span("outer") as outer:
                assert obs.current_span() is outer
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None

    def test_set_attaches_attributes_chainably(self):
        with obs.capture() as collector:
            with obs.span("s", a=1) as span:
                assert span.set(b=2) is span
        finished = collector.spans[0]
        assert finished.attributes == {"a": 1, "b": 2}
        assert finished.duration_s >= 0.0

    def test_span_finished_on_exception(self):
        with obs.capture() as collector:
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        assert [s.name for s in collector.spans] == ["doomed"]


class TestInactivePath:
    def test_span_yields_null_span_without_collector(self):
        assert not obs.is_active()
        with obs.span("ignored", key="value") as span:
            assert span is trace.NULL_SPAN
            assert span.set(more=1) is span
        assert not trace.ACTIVE

    def test_null_span_context_reuses_null_span(self):
        with trace.NULL_SPAN_CONTEXT as span:
            assert span is trace.NULL_SPAN

    def test_helpers_noop_without_collector(self):
        obs.inc("engine_aggregate_total", path="cache_hit")
        obs.set_gauge("some_gauge", 3.0)
        obs.observe("some_histogram", 0.1)
        assert obs.active_collector() is None


class TestCaptureLifetime:
    def test_active_flag_tracks_installation(self):
        assert not trace.ACTIVE
        with obs.capture():
            assert trace.ACTIVE
            assert obs.is_active()
        assert not trace.ACTIVE
        assert obs.active_collector() is None

    def test_nested_captures_restore_previous(self):
        with obs.capture() as outer:
            with obs.span("before"):
                pass
            with obs.capture() as inner:
                assert obs.active_collector() is inner
                with obs.span("nested"):
                    pass
            assert obs.active_collector() is outer
        assert [s.name for s in outer.spans] == ["before"]
        assert [s.name for s in inner.spans] == ["nested"]

    def test_capture_writes_jsonl_even_on_exception(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        with pytest.raises(ValueError):
            with obs.capture(trace_path=str(path)):
                with obs.span("attempt"):
                    raise ValueError("crashed mid-run")
        records = obs.read_jsonl(str(path))
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" and r["name"] == "attempt" for r in records)

    def test_uninstall_restores_on_collector_error(self):
        collector = obs.Collector()
        previous = obs.install(collector)
        try:
            assert obs.active_collector() is collector
        finally:
            obs.uninstall(previous)
        assert obs.active_collector() is None
