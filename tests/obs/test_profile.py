"""Span-family profiler: self-time accounting and the rendered table."""

import pytest

from repro import obs
from repro.obs.profile import (
    FamilyProfile,
    profile_collector,
    profile_records,
    profile_spans,
    render_profile,
)
from repro.obs.trace import Span


def make_span(name, span_id, parent_id, duration):
    return Span(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        start_unix=0.0,
        start=0.0,
        duration_s=duration,
    )


class TestProfileSpans:
    def test_self_time_subtracts_direct_children(self):
        spans = [
            make_span("outer", 1, None, 1.0),
            make_span("mid", 2, 1, 0.6),
            make_span("leaf", 3, 2, 0.25),
            make_span("leaf", 4, 2, 0.25),
        ]
        by_name = {p.name: p for p in profile_spans(spans)}
        assert by_name["outer"].self_s == pytest.approx(0.4)  # 1.0 - 0.6
        assert by_name["mid"].self_s == pytest.approx(0.1)  # 0.6 - 0.5
        assert by_name["leaf"].self_s == pytest.approx(0.5)
        assert by_name["leaf"].count == 2
        assert by_name["leaf"].child_s == 0.0
        assert by_name["leaf"].self_fraction == 1.0

    def test_only_direct_children_subtract(self):
        # The grandchild reduces mid's self time, not outer's.
        spans = [
            make_span("outer", 1, None, 1.0),
            make_span("mid", 2, 1, 0.9),
            make_span("leaf", 3, 2, 0.8),
        ]
        by_name = {p.name: p for p in profile_spans(spans)}
        assert abs(by_name["outer"].self_s - 0.1) < 1e-12

    def test_threaded_children_clamp_self_at_zero(self):
        # Fan-out: children overlap, summed child time exceeds the parent.
        spans = [
            make_span("pool", 1, None, 1.0),
            make_span("shard", 2, 1, 0.9),
            make_span("shard", 3, 1, 0.9),
        ]
        by_name = {p.name: p for p in profile_spans(spans)}
        assert by_name["pool"].self_s == 0.0  # clamped, not -0.8
        assert by_name["pool"].child_s == 1.8

    def test_sorted_by_self_time_descending(self):
        spans = [
            make_span("small", 1, None, 0.1),
            make_span("big", 2, None, 0.9),
            make_span("tie_a", 3, None, 0.5),
            make_span("tie_b", 4, None, 0.5),
        ]
        names = [p.name for p in profile_spans(spans)]
        assert names == ["big", "tie_a", "tie_b", "small"]  # ties by name

    def test_accepts_jsonl_record_dicts(self):
        records = [
            {"type": "span", "name": "a", "span_id": 1, "parent_id": None, "duration_s": 1.0},
            {"type": "span", "name": "b", "span_id": 2, "parent_id": 1, "duration_s": 0.4},
            {"type": "counter", "name": "noise_total", "value": 3},
            {"type": "meta", "version": 1},
        ]
        profiles = profile_records(records)
        assert [p.name for p in profiles] == ["a", "b"]
        assert profiles[0].self_s == 0.6

    def test_empty_input(self):
        assert profile_spans([]) == []
        assert render_profile([]) == "(no spans to profile)"

    def test_mean_self_and_dict_shape(self):
        profile = FamilyProfile("f", count=4, total_s=2.0, self_s=1.0, child_s=1.0)
        assert profile.mean_self_s == 0.25
        assert profile.self_fraction == 0.5
        as_dict = profile.as_dict()
        assert as_dict["name"] == "f"
        assert as_dict["mean_self_s"] == 0.25

    def test_profile_collector_matches_capture(self):
        with obs.capture() as collector:
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        profiles = profile_collector(collector)
        assert {p.name for p in profiles} == {"outer", "inner"}
        outer = next(p for p in profiles if p.name == "outer")
        inner = next(p for p in profiles if p.name == "inner")
        assert outer.child_s == inner.total_s


class TestRenderProfile:
    def profiles(self, n=3):
        return [
            FamilyProfile(f"family_{i}", count=i + 1, total_s=1.0 / (i + 1), self_s=0.5 / (i + 1), child_s=0.5 / (i + 1))
            for i in range(n)
        ]

    def test_header_and_rows(self):
        table = render_profile(self.profiles())
        lines = table.splitlines()
        assert lines[0].split() == ["span", "count", "self", "self%", "child", "total", "mean", "self"]
        assert len(lines) == 4
        assert lines[1].startswith("family_0")
        assert "50.0%" in lines[1]

    def test_top_n_truncates_and_counts_hidden(self):
        table = render_profile(self.profiles(5), top=2)
        assert "family_2" not in table
        assert "(3 more families below the top-2)" in table
        singular = render_profile(self.profiles(3), top=2)
        assert "(1 more family below the top-2)" in singular

    def test_unit_scaling(self):
        rows = [
            FamilyProfile("sec", 1, 2.5, 2.5, 0.0),
            FamilyProfile("milli", 1, 0.0031, 0.0031, 0.0),
            FamilyProfile("micro", 1, 12e-6, 12e-6, 0.0),
        ]
        table = render_profile(rows)
        assert "2.50s" in table
        assert "3.10ms" in table
        assert "12us" in table
