"""SLO objectives, sliding windows and burn-rate export."""

import pytest

from repro import obs
from repro.obs.metrics import METRIC_HELP, MetricRegistry
from repro.obs.slo import (
    SLOObjective,
    SLOTracker,
    TickOutcome,
    WindowState,
    default_objectives,
)

FAST = TickOutcome(seconds=0.01)
SLOW = TickOutcome(seconds=2.0)
ERRORED = TickOutcome(seconds=0.01, error=True)
DEGRADED = TickOutcome(seconds=0.01, degraded=True)


class TestObjective:
    def test_latency_threshold_classifies(self):
        objective = SLOObjective("lat", latency_threshold_s=0.5, count_errors=False)
        assert objective.is_good(FAST)
        assert not objective.is_good(SLOW)
        # Errors pass a latency-only objective.
        assert objective.is_good(ERRORED)

    def test_error_and_degraded_flags(self):
        strict = SLOObjective("ok", count_degraded=True)
        assert strict.is_good(FAST)
        assert not strict.is_good(ERRORED)
        assert not strict.is_good(DEGRADED)
        # A non-full tier counts as degraded under count_degraded.
        assert not strict.is_good(TickOutcome(seconds=0.01, tier="serial"))
        assert strict.is_good(TickOutcome(seconds=0.01, tier="full"))
        lax = SLOObjective("lax", count_degraded=False)
        assert lax.is_good(DEGRADED)

    def test_error_budget_is_one_minus_target(self):
        assert SLOObjective("o", target=0.99).error_budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            SLOObjective("o", target=1.0)
        with pytest.raises(ValueError, match="target"):
            SLOObjective("o", target=0.0)
        with pytest.raises(ValueError, match="latency_threshold_s"):
            SLOObjective("o", latency_threshold_s=-1.0)

    def test_default_objectives_shape(self):
        defaults = default_objectives()
        names = [o.name for o in defaults]
        assert names == ["tick_latency", "tick_success"]
        assert defaults[0].latency_threshold_s == 0.25


class TestWindowState:
    def test_bad_count_slides(self):
        window = WindowState(3)
        for good in (False, False, True):
            window.push(good)
        assert window.bad == 2
        assert window.bad_fraction == pytest.approx(2 / 3)
        window.push(True)  # evicts the oldest bad tick
        window.push(True)  # evicts the second bad tick
        assert window.bad == 0
        assert window.bad_fraction == 0.0
        assert window.n == 3

    def test_empty_window_is_clean(self):
        window = WindowState(5)
        assert window.n == 0
        assert window.bad_fraction == 0.0

    def test_size_validated(self):
        with pytest.raises(ValueError, match="window size"):
            WindowState(0)

    def test_incremental_count_matches_recount(self):
        window = WindowState(7)
        import random

        rng = random.Random(13)
        for __ in range(200):
            window.push(rng.random() < 0.8)
            assert window.bad == sum(1 for g in window._flags if not g)


class TestTracker:
    def tracker(self):
        return SLOTracker(
            objectives=[
                SLOObjective("lat", target=0.9, latency_threshold_s=0.5, count_errors=False),
                SLOObjective("ok", target=0.99),
            ],
            windows=(4, 10),
        )

    def test_burn_rate_math(self):
        tracker = self.tracker()
        for outcome in (FAST, SLOW, FAST, FAST):
            tracker.record(outcome)
        # lat: 1 bad of 4 in the short window; budget 0.1 -> burn 2.5.
        assert tracker.good_fraction("lat", 4) == pytest.approx(0.75)
        assert tracker.burn_rate("lat", 4) == pytest.approx(0.25 / 0.1)
        assert tracker.budget_remaining("lat", 4) == pytest.approx(1 - 2.5)
        # ok: nothing errored, burn 0, budget intact.
        assert tracker.burn_rate("ok", 4) == 0.0
        assert tracker.budget_remaining("ok", 10) == 1.0

    def test_short_window_recovers_faster_than_long(self):
        tracker = self.tracker()
        tracker.record(SLOW)
        for __ in range(4):
            tracker.record(FAST)
        # The blip has left the 4-tick window but still burns the 10-tick one.
        assert tracker.burn_rate("lat", 4) == 0.0
        assert tracker.burn_rate("lat", 10) > 0.0

    def test_export_writes_the_slo_family(self):
        tracker = self.tracker()
        registry = MetricRegistry()
        for outcome in (FAST, SLOW, ERRORED):
            tracker.record(outcome, registry=registry)
        by_name = {}
        for metric in registry.collect():
            by_name.setdefault(metric.name, []).append(metric)
        assert set(by_name) >= {
            "slo_objective_target",
            "slo_ticks_total",
            "slo_good_fraction",
            "slo_burn_rate",
            "slo_error_budget_remaining",
        }
        ticks = {
            (m.labels["objective"], m.labels["outcome"]): m.value
            for m in by_name["slo_ticks_total"]
        }
        assert ticks[("lat", "bad")] == 1  # only the slow tick
        assert ticks[("ok", "bad")] == 1  # only the errored tick
        assert ticks[("lat", "good")] == 2
        # Windowed series carry both labels; one per (objective, window).
        burn = by_name["slo_burn_rate"]
        assert {(m.labels["objective"], m.labels["window"]) for m in burn} == {
            ("lat", "4"),
            ("lat", "10"),
            ("ok", "4"),
            ("ok", "10"),
        }

    def test_export_counters_only_move_up(self):
        tracker = self.tracker()
        registry = MetricRegistry()
        tracker.record(ERRORED, registry=registry)
        tracker.export(registry)  # re-export without new ticks: no double count
        bad = registry.counter("slo_ticks_total", {"objective": "ok", "outcome": "bad"})
        assert bad.value == 1

    def test_record_exports_to_active_collector(self):
        tracker = self.tracker()
        with obs.capture() as collector:
            tracker.record(FAST)
        assert any(
            m.name == "slo_good_fraction" for m in collector.metrics.collect()
        )

    def test_record_without_registry_or_collector_still_tracks(self):
        tracker = self.tracker()
        assert not obs.is_active()
        tracker.record(SLOW)
        assert tracker.ticks_recorded == 1
        assert tracker.burn_rate("lat", 4) > 0.0

    def test_snapshot_shape(self):
        tracker = self.tracker()
        tracker.record(SLOW)
        rows = tracker.snapshot()
        assert [r["objective"] for r in rows] == ["lat", "ok"]
        lat = rows[0]
        assert lat["bad_total"] == 1
        assert lat["windows"]["4"]["burn_rate"] == pytest.approx(1.0 / 0.1)

    def test_unknown_objective_is_a_clear_error(self):
        with pytest.raises(KeyError, match="unknown objective"):
            self.tracker().burn_rate("nope", 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            SLOTracker(objectives=[])
        with pytest.raises(ValueError, match="unique"):
            SLOTracker(objectives=[SLOObjective("a"), SLOObjective("a")])
        with pytest.raises(ValueError, match="window"):
            SLOTracker(windows=())

    def test_every_exported_name_is_catalogued(self):
        # The docs-sync test covers docs; this pins the METRIC_HELP side.
        registry = MetricRegistry()
        tracker = SLOTracker()
        tracker.record(FAST, registry=registry)
        for metric in registry.collect():
            assert metric.name in METRIC_HELP
