"""Tests for dataset/case serialization round-trips."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import LocalizationCase
from repro.data.io import (
    case_from_dict,
    case_to_dict,
    dataset_from_csv,
    dataset_to_csv,
    load_cases,
    load_cases_npz,
    save_cases,
    save_cases_npz,
    schema_from_dict,
    schema_to_dict,
)
from repro.data.schema import paper_example_schema


@pytest.fixture
def labelled(example_schema):
    rng = np.random.default_rng(3)
    n = example_schema.n_leaves
    return FineGrainedDataset.full(
        example_schema,
        rng.uniform(1, 100, n),
        rng.uniform(1, 100, n),
        rng.random(n) < 0.3,
    )


class TestSchemaDict:
    def test_roundtrip(self, example_schema):
        assert schema_from_dict(schema_to_dict(example_schema)) == example_schema

    def test_order_preserved(self):
        schema = schema_from_dict({"z": ["1"], "a": ["2", "3"]})
        assert schema.names == ("z", "a")


class TestCsv:
    def test_roundtrip(self, labelled, example_schema, tmp_path):
        path = tmp_path / "leaf.csv"
        dataset_to_csv(labelled, path)
        rebuilt = dataset_from_csv(path, example_schema)
        assert np.array_equal(rebuilt.codes, labelled.codes)
        assert np.allclose(rebuilt.v, labelled.v)
        assert np.allclose(rebuilt.f, labelled.f)
        assert np.array_equal(rebuilt.labels, labelled.labels)

    def test_header_layout(self, labelled, tmp_path):
        path = tmp_path / "leaf.csv"
        dataset_to_csv(labelled, path)
        header = path.read_text().splitlines()[0]
        assert header == "A,B,C,v,f,label"

    def test_wrong_schema_rejected(self, labelled, tmp_path, tiny_schema):
        path = tmp_path / "leaf.csv"
        dataset_to_csv(labelled, path)
        with pytest.raises(ValueError):
            dataset_from_csv(path, tiny_schema)

    def test_empty_file_rejected(self, tmp_path, example_schema):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            dataset_from_csv(path, example_schema)

    def test_float_precision_preserved(self, example_schema, tmp_path):
        n = example_schema.n_leaves
        v = np.full(n, 1.0 / 3.0)
        ds = FineGrainedDataset.full(example_schema, v, v * 7.0)
        path = tmp_path / "precise.csv"
        dataset_to_csv(ds, path)
        rebuilt = dataset_from_csv(path, example_schema)
        assert np.array_equal(rebuilt.v, ds.v)  # exact, via repr()


class TestCaseBundles:
    def make_case(self, labelled):
        return LocalizationCase(
            case_id="case-1",
            dataset=labelled,
            true_raps=(AttributeCombination.parse("(a1, *, *)"),),
            metadata={"group": (1, 1), "seed": np.int64(7)},
        )

    def test_dict_roundtrip(self, labelled):
        case = self.make_case(labelled)
        rebuilt = case_from_dict(case_to_dict(case))
        assert rebuilt.case_id == case.case_id
        assert rebuilt.true_raps == case.true_raps
        assert np.allclose(rebuilt.dataset.v, case.dataset.v)
        assert np.array_equal(rebuilt.dataset.labels, case.dataset.labels)
        assert rebuilt.dataset.schema == case.dataset.schema

    def test_metadata_jsonified(self, labelled):
        data = case_to_dict(self.make_case(labelled))
        assert data["metadata"]["seed"] == 7
        assert data["metadata"]["group"] == [1, 1]

    def test_file_roundtrip(self, labelled, tmp_path):
        cases = [self.make_case(labelled)]
        path = tmp_path / "cases.json"
        save_cases(cases, path)
        loaded = load_cases(path)
        assert len(loaded) == 1
        assert loaded[0].true_raps == cases[0].true_raps

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(ValueError):
            load_cases(path)

    def test_generated_cases_roundtrip(self, tmp_path):
        from repro.data.rapmd import RAPMDConfig, generate_rapmd
        from repro.data.schema import cdn_schema

        cases = generate_rapmd(cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=3, n_days=2, seed=1))
        path = tmp_path / "rapmd.json"
        save_cases(cases, path)
        loaded = load_cases(path)
        for original, copy in zip(cases, loaded):
            assert original.true_raps == copy.true_raps
            assert np.allclose(original.dataset.f, copy.dataset.f)


class TestNpzBundles:
    def make_cases(self, labelled):
        return [
            LocalizationCase(
                case_id=f"case-{i}",
                dataset=labelled,
                true_raps=(AttributeCombination.parse("(a1, *, *)"),),
                metadata={"group": (1, i), "seed": np.int64(7 + i)},
            )
            for i in range(2)
        ]

    def test_roundtrip_is_bit_exact(self, labelled, tmp_path):
        cases = self.make_cases(labelled)
        path = tmp_path / "cases.npz"
        save_cases_npz(cases, path)
        loaded = load_cases_npz(path)
        assert len(loaded) == len(cases)
        for original, copy in zip(cases, loaded):
            assert copy.case_id == original.case_id
            assert copy.true_raps == original.true_raps
            assert copy.dataset.schema == original.dataset.schema
            for field in ("codes", "v", "f", "labels"):
                got = getattr(copy.dataset, field)
                want = getattr(original.dataset, field)
                assert got.dtype == want.dtype
                assert np.array_equal(got, want)

    def test_metadata_survives_header(self, labelled, tmp_path):
        path = tmp_path / "cases.npz"
        save_cases_npz(self.make_cases(labelled), path)
        loaded = load_cases_npz(path)
        assert loaded[0].metadata == {"group": [1, 0], "seed": 7}
        assert loaded[1].metadata["seed"] == 8

    def test_save_load_cases_dispatch_on_suffix(self, labelled, tmp_path):
        cases = self.make_cases(labelled)
        path = tmp_path / "cases.npz"
        save_cases(cases, path)
        # It really is an npz archive (zip magic), not JSON.
        assert path.read_bytes()[:2] == b"PK"
        loaded = load_cases(path)
        assert [case.case_id for case in loaded] == ["case-0", "case-1"]

    def test_non_bundle_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, payload=np.arange(3))
        with pytest.raises(ValueError):
            load_cases_npz(path)

    def test_wrong_format_tag_rejected(self, tmp_path):
        path = tmp_path / "tagged.npz"
        header = np.frombuffer(b'{"format": "other", "cases": []}', dtype=np.uint8)
        np.savez(path, header=header)
        with pytest.raises(ValueError):
            load_cases_npz(path)

    def test_float_bits_not_rounded(self, example_schema, tmp_path):
        # Values chosen to lose bits under any repr/parse shortcut.
        n = example_schema.n_leaves
        rng = np.random.default_rng(11)
        v = np.nextafter(rng.uniform(0, 1, n), 2.0)
        ds = FineGrainedDataset.full(example_schema, v, v * np.pi)
        case = LocalizationCase(
            case_id="precise", dataset=ds, true_raps=(), metadata={}
        )
        path = tmp_path / "precise.npz"
        save_cases_npz([case], path)
        loaded = load_cases_npz(path)[0]
        assert loaded.dataset.v.tobytes() == ds.v.tobytes()
        assert loaded.dataset.f.tobytes() == ds.f.tobytes()
