"""Tests for case/bundle well-posedness validation."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.injection import LocalizationCase
from repro.data.validation import validate_case, validate_cases
from tests.conftest import make_labelled_dataset


def ac(text):
    return AttributeCombination.parse(text)


def case_with(dataset, raps, case_id="c"):
    return LocalizationCase(case_id, dataset, tuple(raps))


@pytest.fixture
def clean_case(example_schema):
    ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
    return case_with(ds, [ac("(a1, *, *)")])


class TestValidateCase:
    def test_clean_case_has_no_findings(self, clean_case):
        assert validate_case(clean_case) == []

    def test_generated_benchmarks_are_clean(self):
        from repro.data.rapmd import RAPMDConfig, generate_rapmd
        from repro.data.schema import cdn_schema
        from repro.data.squeeze_dataset import SqueezeDatasetConfig, generate_squeeze_dataset

        rapmd = generate_rapmd(cdn_schema(5, 2, 2, 4), RAPMDConfig(n_cases=4, n_days=2, seed=1))
        squeeze = generate_squeeze_dataset(
            SqueezeDatasetConfig(attribute_sizes=(5, 4, 3, 3), cases_per_group=2,
                                 groups=((1, 1), (2, 2)), seed=1)
        )
        report = validate_cases(rapmd + squeeze)
        assert report.ok, report.render()
        assert report.findings == []

    def test_no_raps_is_an_error(self, clean_case):
        broken = LocalizationCase("c", clean_case.dataset, ())
        findings = validate_case(broken)
        assert any(f.severity == "error" for f in findings)

    def test_schema_violation_is_an_error(self, clean_case):
        broken = case_with(clean_case.dataset, [ac("(zz, *, *)")])
        findings = validate_case(broken)
        assert any("does not fit the schema" in f.message for f in findings)

    def test_total_combination_rejected(self, clean_case):
        broken = case_with(clean_case.dataset, [ac("(*, *, *)")])
        findings = validate_case(broken)
        assert any("all-wildcard" in f.message for f in findings)

    def test_duplicate_raps_error(self, clean_case):
        broken = case_with(clean_case.dataset, [ac("(a1, *, *)"), ac("(a1, *, *)")])
        assert any("duplicate RAP" in f.message for f in validate_case(broken))

    def test_ancestor_related_raps_error(self, clean_case):
        broken = case_with(clean_case.dataset, [ac("(a1, *, *)"), ac("(a1, b1, *)")])
        assert any("ancestor" in f.message for f in validate_case(broken))

    def test_zero_support_rap_error(self, tiny_schema):
        import numpy as np

        from repro.data.dataset import FineGrainedDataset

        partial = FineGrainedDataset(
            tiny_schema, np.array([[0, 0]]), np.ones(1), np.ones(1), np.array([True])
        )
        broken = case_with(partial, [ac("(e0_1, *)")])
        assert any("covers no leaf rows" in f.message for f in validate_case(broken))

    def test_low_confidence_rap_warns(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, b1, c1)"])  # 1 of 4 leaves
        suspicious = case_with(ds, [ac("(a1, *, *)")])
        findings = validate_case(suspicious)
        assert any(f.severity == "warning" and "mostly healthy" in f.message for f in findings)

    def test_unexplained_anomalies_warn(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a3, b2, c2)"])
        incomplete = case_with(ds, [ac("(a1, *, *)")])
        findings = validate_case(incomplete)
        assert any("outside every RAP" in f.message for f in findings)

    def test_no_anomalous_labels_warn(self, example_schema):
        import numpy as np

        from repro.data.dataset import FineGrainedDataset

        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        quiet = case_with(ds, [ac("(a1, *, *)")])
        findings = validate_case(quiet)
        assert any("no leaf is labelled anomalous" in f.message for f in findings)


class TestValidateCases:
    def test_duplicate_ids_flagged(self, clean_case):
        report = validate_cases([clean_case, clean_case])
        assert not report.ok
        assert any("duplicate case_id" in f.message for f in report.errors)

    def test_report_counts(self, clean_case, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, b1, c1)"])
        warny = LocalizationCase("w", ds, (ac("(a1, *, *)"),))
        report = validate_cases([clean_case, warny])
        assert report.n_cases == 2
        assert report.ok  # warnings only
        assert len(report.warnings) >= 1

    def test_render_mentions_summary(self, clean_case):
        text = validate_cases([clean_case]).render()
        assert "validated 1 cases" in text


class TestCliValidate:
    def test_clean_bundle_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bundle.json"
        assert main(["generate", "rapmd", "--out", str(path), "--seed", "4"]) == 0
        assert main(["validate", "--cases", str(path)]) == 0
        assert "0 errors" in capsys.readouterr().out

    def test_broken_bundle_exits_nonzero(self, tmp_path, clean_case, capsys):
        from repro.cli import main
        from repro.data.io import save_cases
        from repro.data.injection import LocalizationCase

        broken = LocalizationCase("b", clean_case.dataset, ())
        path = tmp_path / "broken.json"
        save_cases([broken], path)
        assert main(["validate", "--cases", str(path)]) == 1
