"""Tests for the Squeeze-style grouped generator (vertical/horizontal assumptions)."""

import numpy as np
import pytest

from repro.data.dataset import deviation
from repro.data.squeeze_dataset import (
    NOISE_LEVELS,
    SqueezeDatasetConfig,
    generate_squeeze_dataset,
)


@pytest.fixture(scope="module")
def squeeze_cases():
    config = SqueezeDatasetConfig(
        attribute_sizes=(5, 4, 3, 3), cases_per_group=3, seed=21
    )
    return generate_squeeze_dataset(config)


class TestGrouping:
    def test_total_case_count(self, squeeze_cases):
        assert len(squeeze_cases) == 9 * 3

    def test_groups_cover_fig8a_grid(self, squeeze_cases):
        groups = {case.metadata["group"] for case in squeeze_cases}
        assert groups == {(d, r) for d in (1, 2, 3) for r in (1, 2, 3)}

    def test_rap_count_matches_group(self, squeeze_cases):
        for case in squeeze_cases:
            __, n_raps = case.metadata["group"]
            assert case.n_raps == n_raps

    def test_rap_dimension_matches_group(self, squeeze_cases):
        for case in squeeze_cases:
            n_dim, __ = case.metadata["group"]
            assert all(rap.layer == n_dim for rap in case.true_raps)

    def test_raps_share_one_cuboid(self, squeeze_cases):
        """The Squeeze dataset's single-cuboid-per-failure property."""
        for case in squeeze_cases:
            cuboids = {rap.specified_indices for rap in case.true_raps}
            assert len(cuboids) == 1


class TestAssumptions:
    def test_vertical_assumption_constant_dev_per_case(self, squeeze_cases):
        cfg = SqueezeDatasetConfig()
        for case in squeeze_cases:
            dev = deviation(case.dataset.v, case.dataset.f, cfg.injection.epsilon)
            for rap in case.true_raps:
                mask = case.dataset.mask_of(rap)
                assert dev[mask].std() < 1e-9
                assert dev[mask].mean() == pytest.approx(case.metadata["case_dev"])

    def test_horizontal_assumption_devs_differ_across_cases(self, squeeze_cases):
        devs = [round(case.metadata["case_dev"], 6) for case in squeeze_cases]
        assert len(set(devs)) == len(devs)

    def test_b0_labels_are_clean(self, squeeze_cases):
        for case in squeeze_cases:
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            assert np.array_equal(case.dataset.labels, truth)


class TestNoiseLevels:
    def test_known_levels(self):
        assert set(NOISE_LEVELS) == {"B0", "B1", "B2", "B3"}
        assert NOISE_LEVELS["B0"] == 0.0

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            generate_squeeze_dataset(SqueezeDatasetConfig(noise_level="B9"))

    def test_noisy_level_flips_labels(self):
        config = SqueezeDatasetConfig(
            attribute_sizes=(5, 4, 3, 3),
            cases_per_group=2,
            groups=((1, 1),),
            noise_level="B3",
            seed=5,
        )
        cases = generate_squeeze_dataset(config)
        any_flipped = False
        for case in cases:
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            if (case.dataset.labels != truth).any():
                any_flipped = True
        assert any_flipped


class TestValidation:
    def test_group_dimension_must_stay_below_attribute_count(self):
        config = SqueezeDatasetConfig(attribute_sizes=(3, 3), groups=((2, 1),))
        with pytest.raises(ValueError):
            generate_squeeze_dataset(config)

    def test_deterministic_under_seed(self):
        config = SqueezeDatasetConfig(
            attribute_sizes=(5, 4, 3, 3), cases_per_group=2, groups=((2, 2),), seed=8
        )
        a = generate_squeeze_dataset(config)
        b = generate_squeeze_dataset(config)
        assert [c.true_raps for c in a] == [c.true_raps for c in b]
