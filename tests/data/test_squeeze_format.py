"""Tests for the published-Squeeze-format loader.

A synthetic directory in the release's exact layout is written to disk
and loaded back; a round-trip fixture also exports one of our generated
cases into the format and verifies every method can consume it.
"""

import csv
from pathlib import Path

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination, AttributeSchema
from repro.data.squeeze_format import (
    infer_schema_from_timestamp_csv,
    load_squeeze_directory,
    load_timestamp_csv,
    parse_ground_truth_set,
)


@pytest.fixture
def schema():
    return AttributeSchema(
        {
            "a": ["a1", "a2", "a3"],
            "b": ["b1", "b2"],
            "c": ["c1", "c2"],
        }
    )


def write_timestamp_csv(path: Path, schema, anomalous_patterns, base=100.0):
    """Full leaf table in the release layout; anomalous rows get real << predict."""
    patterns = [AttributeCombination.parse(p) for p in anomalous_patterns]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(schema.names) + ["real", "predict"])
        for values in schema.iter_leaf_values():
            predict = base
            real = base * (0.5 if any(p.matches(values) for p in patterns) else 1.0)
            writer.writerow(list(values) + [real, predict])


@pytest.fixture
def squeeze_dir(tmp_path, schema):
    directory = tmp_path / "B0"
    directory.mkdir()
    write_timestamp_csv(directory / "1501475700.csv", schema, ["(a1, *, *)"])
    write_timestamp_csv(directory / "1501476000.csv", schema, ["(a2, b2, *)", "(a3, b2, *)"])
    with (directory / "injection_info.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "kpi", "set"])
        writer.writerow(["1501475700", "kpi1", "a1"])
        writer.writerow(["1501476000", "kpi1", "a2&b2;a3&b2"])
    return directory


class TestSchemaInference:
    def test_infers_attributes_and_vocabulary(self, squeeze_dir, schema):
        inferred = infer_schema_from_timestamp_csv(squeeze_dir / "1501475700.csv")
        assert inferred == schema

    def test_rejects_csv_without_value_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\na1,b1\n")
        with pytest.raises(ValueError):
            infer_schema_from_timestamp_csv(path)


class TestGroundTruthParsing:
    def test_single_rap(self, schema):
        assert parse_ground_truth_set("a1", schema) == [
            AttributeCombination.parse("(a1, *, *)")
        ]

    def test_multi_attribute_rap(self, schema):
        assert parse_ground_truth_set("a2&b2", schema) == [
            AttributeCombination.parse("(a2, b2, *)")
        ]

    def test_multiple_raps(self, schema):
        raps = parse_ground_truth_set("a2&b2;a3&b1", schema)
        assert [str(r) for r in raps] == ["(a2, b2, *)", "(a3, b1, *)"]

    def test_whitespace_tolerated(self, schema):
        raps = parse_ground_truth_set(" a1 ; b2 & c1 ", schema)
        assert [str(r) for r in raps] == ["(a1, *, *)", "(*, b2, c1)"]

    def test_unknown_token_rejected(self, schema):
        with pytest.raises(KeyError):
            parse_ground_truth_set("z9", schema)

    def test_double_binding_rejected(self, schema):
        with pytest.raises(ValueError):
            parse_ground_truth_set("a1&a2", schema)

    def test_empty_rejected(self, schema):
        with pytest.raises(ValueError):
            parse_ground_truth_set(";", schema)

    def test_ambiguous_vocabulary_rejected(self):
        ambiguous = AttributeSchema({"x": ["v1"], "y": ["v1", "v2"]})
        with pytest.raises(ValueError):
            parse_ground_truth_set("v1", ambiguous)


class TestTimestampLoading:
    def test_values_and_labels(self, squeeze_dir, schema):
        dataset = load_timestamp_csv(squeeze_dir / "1501475700.csv", schema)
        assert dataset.n_rows == schema.n_leaves
        assert dataset.n_anomalous == 4  # leaves under (a1,*,*)
        assert dataset.confidence(AttributeCombination.parse("(a1, *, *)")) == 1.0

    def test_schema_mismatch_rejected(self, squeeze_dir):
        other = AttributeSchema({"x": ["1"], "y": ["2"]})
        with pytest.raises(ValueError):
            load_timestamp_csv(squeeze_dir / "1501475700.csv", other)


class TestDirectoryLoading:
    def test_loads_cases_in_timestamp_order(self, squeeze_dir):
        cases = load_squeeze_directory(squeeze_dir)
        assert [c.metadata["timestamp"] for c in cases] == ["1501475700", "1501476000"]
        assert cases[0].true_raps == (AttributeCombination.parse("(a1, *, *)"),)
        assert len(cases[1].true_raps) == 2

    def test_complementary_raps_defeat_cp_deletion(self, tmp_path, schema):
        """A documented Criteria-1 pathology: RAPs (a2,b2) + (a3,b1) split
        attribute B's anomalies exactly evenly, so CP(B) = 0 and Algorithm 1
        deletes an attribute that genuinely occurs in both RAPs.  Disabling
        deletion recovers them — the Table VI trade-off in its sharpest form.
        """
        from repro.core.config import RAPMinerConfig
        from repro.core.miner import RAPMiner

        directory = tmp_path / "adversarial"
        directory.mkdir()
        write_timestamp_csv(
            directory / "7.csv", schema, ["(a2, b2, *)", "(a3, b1, *)"]
        )
        with (directory / "injection_info.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["timestamp", "set"])
            writer.writerow(["7", "a2&b2;a3&b1"])
        case = load_squeeze_directory(directory, schema=schema)[0]

        from repro.core.classification_power import classification_power

        assert classification_power(case.dataset, "b") == pytest.approx(0.0, abs=1e-12)
        with_deletion = RAPMiner().localize(case.dataset, k=2)
        without_deletion = RAPMiner(
            RAPMinerConfig(enable_attribute_deletion=False)
        ).localize(case.dataset, k=2)
        assert set(without_deletion) == set(case.true_raps)
        assert set(with_deletion) != set(case.true_raps)

    def test_end_to_end_localization(self, squeeze_dir):
        from repro.core.miner import RAPMiner
        from repro.experiments.runner import run_cases

        cases = load_squeeze_directory(squeeze_dir)
        evaluation = run_cases(RAPMiner(), cases, k_from_truth=True)
        assert evaluation.mean_f1 == 1.0

    def test_missing_injection_info(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_squeeze_directory(tmp_path)

    def test_injection_info_requires_columns(self, tmp_path):
        (tmp_path / "injection_info.csv").write_text("timestamp\n123\n")
        with pytest.raises(ValueError):
            load_squeeze_directory(tmp_path)

    def test_explicit_schema_used(self, squeeze_dir, schema):
        cases = load_squeeze_directory(squeeze_dir, schema=schema)
        assert cases[0].dataset.schema == schema

    def test_roundtrip_of_generated_case(self, tmp_path):
        """Export one of our generated cases to the release format, load it
        back, and check the ground truth and values survive."""
        from repro.data.squeeze_dataset import SqueezeDatasetConfig, generate_squeeze_dataset

        config = SqueezeDatasetConfig(
            attribute_sizes=(4, 3, 3), cases_per_group=1, groups=((2, 1),), seed=3
        )
        case = generate_squeeze_dataset(config)[0]
        schema = case.dataset.schema
        directory = tmp_path / "export"
        directory.mkdir()
        with (directory / "100.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(list(schema.names) + ["real", "predict"])
            for values, v, f, __ in case.dataset.to_records():
                writer.writerow(list(values) + [repr(v), repr(f)])
        set_text = ";".join(
            "&".join(v for v in rap.values if v is not None) for rap in case.true_raps
        )
        with (directory / "injection_info.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["timestamp", "set"])
            writer.writerow(["100", set_text])

        loaded = load_squeeze_directory(directory, schema=schema)
        assert loaded[0].true_raps == case.true_raps
        assert np.allclose(np.sort(loaded[0].dataset.v), np.sort(case.dataset.v))
        assert loaded[0].dataset.n_anomalous == case.dataset.n_anomalous
