"""Tests for temporal traces with scheduled incidents."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.data.trace import Incident, IncidentSchedule, generate_trace


def ac(text):
    return AttributeCombination.parse(text)


@pytest.fixture
def simulator():
    return CDNSimulator(cdn_schema(5, 2, 2, 4), CDNSimulatorConfig(seed=61, noise_sigma=0.0))


class TestIncident:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            Incident(ac("(L1, *, *, *)"), start=5, end=3)
        with pytest.raises(ValueError):
            Incident(ac("(L1, *, *, *)"), start=-1, end=3)
        with pytest.raises(ValueError):
            Incident(ac("(L1, *, *, *)"), start=0, end=1, retain_fraction=1.0)

    def test_active_window_inclusive(self):
        incident = Incident(ac("(L1, *, *, *)"), start=2, end=4)
        assert not incident.active_at(1)
        assert incident.active_at(2)
        assert incident.active_at(4)
        assert not incident.active_at(5)


class TestSchedule:
    def test_truth_at(self):
        schedule = IncidentSchedule()
        schedule.add(Incident(ac("(L1, *, *, *)"), 2, 4))
        schedule.add(Incident(ac("(*, *, *, Site1)"), 3, 5))
        assert schedule.truth_at(1) == []
        assert len(schedule.truth_at(3)) == 2

    def test_incident_steps_deduplicated(self):
        schedule = IncidentSchedule(
            [Incident(ac("(L1, *, *, *)"), 2, 4), Incident(ac("(L2, *, *, *)"), 3, 6)]
        )
        assert schedule.incident_steps == [2, 3, 4, 5, 6]


class TestGenerateTrace:
    def test_quiet_trace_matches_simulator(self, simulator):
        steps = list(generate_trace(simulator, IncidentSchedule(), 3, sample_every=10))
        assert len(steps) == 3
        for step in steps:
            expected = simulator.snapshot(step.simulator_step).v
            assert np.allclose(step.values, expected)
            assert step.truth == ()

    def test_incident_scales_scope_only(self, simulator):
        pattern = ac("(L2, *, *, *)")
        schedule = IncidentSchedule([Incident(pattern, 1, 1, retain_fraction=0.5)])
        steps = list(generate_trace(simulator, schedule, 3, sample_every=10))
        probe = simulator.snapshot(steps[1].simulator_step).to_dataset()
        mask = probe.mask_of(pattern)
        baseline = simulator.snapshot(steps[1].simulator_step).v
        assert np.allclose(steps[1].values[mask], 0.5 * baseline[mask])
        assert np.allclose(steps[1].values[~mask], baseline[~mask])
        assert steps[1].truth == (pattern,)
        # adjacent steps untouched
        assert np.allclose(steps[0].values, simulator.snapshot(steps[0].simulator_step).v)

    def test_overlapping_incidents_compose(self, simulator):
        a = Incident(ac("(L1, *, *, *)"), 0, 0, retain_fraction=0.5)
        b = Incident(ac("(*, *, *, Site1)"), 0, 0, retain_fraction=0.5)
        schedule = IncidentSchedule([a, b])
        step = next(iter(generate_trace(simulator, schedule, 1, sample_every=10)))
        probe = simulator.snapshot(0).to_dataset()
        both = probe.mask_of(ac("(L1, *, *, Site1)"))
        baseline = simulator.snapshot(0).v
        assert np.allclose(step.values[both], 0.25 * baseline[both])

    def test_sample_spacing(self, simulator):
        steps = list(generate_trace(simulator, IncidentSchedule(), 4, sample_every=15, start_minute=100))
        assert [s.simulator_step for s in steps] == [100, 115, 130, 145]

    def test_validation(self, simulator):
        with pytest.raises(ValueError):
            list(generate_trace(simulator, IncidentSchedule(), -1))
        with pytest.raises(ValueError):
            list(generate_trace(simulator, IncidentSchedule(), 2, sample_every=0))
