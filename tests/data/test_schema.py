"""Tests for canonical schema builders."""

import pytest

from repro.data.schema import cdn_schema, paper_example_schema, schema_from_sizes, small_schema


class TestCdnSchema:
    def test_default_matches_table1(self):
        schema = cdn_schema()
        assert schema.names == ("location", "access_type", "os", "website")
        assert schema.sizes == (33, 4, 4, 20)
        assert schema.n_leaves == 10560

    def test_paper_element_names(self):
        schema = cdn_schema()
        assert schema.elements("location")[0] == "L1"
        assert schema.elements("location")[-1] == "L33"
        assert "Wireless" in schema.elements("access_type")
        assert "Fixed" in schema.elements("access_type")
        assert "Android" in schema.elements("os")
        assert "IOS" in schema.elements("os")
        assert schema.elements("website") == tuple(f"Site{i}" for i in range(1, 21))

    def test_scaled_down(self):
        schema = cdn_schema(5, 2, 2, 3)
        assert schema.sizes == (5, 2, 2, 3)
        assert schema.n_leaves == 60

    def test_scaling_beyond_named_elements(self):
        schema = cdn_schema(2, 6, 6, 2)
        assert len(schema.elements("access_type")) == 6
        assert len(set(schema.elements("access_type"))) == 6
        assert len(set(schema.elements("os"))) == 6


class TestExampleSchema:
    def test_matches_fig6(self):
        schema = paper_example_schema()
        assert schema.names == ("A", "B", "C")
        assert schema.elements("A") == ("a1", "a2", "a3")
        assert schema.elements("B") == ("b1", "b2")
        assert schema.elements("C") == ("c1", "c2")


class TestGenericBuilders:
    def test_schema_from_sizes(self):
        schema = schema_from_sizes([2, 3])
        assert schema.names == ("attr0", "attr1")
        assert schema.elements("attr1") == ("e1_0", "e1_1", "e1_2")

    def test_schema_from_sizes_custom_prefix(self):
        schema = schema_from_sizes([2], prefix="dim")
        assert schema.names == ("dim0",)

    def test_rejects_empty_attribute(self):
        with pytest.raises(ValueError):
            schema_from_sizes([2, 0])

    def test_small_schema_shape(self):
        schema = small_schema()
        assert schema.n_attributes == 4
        assert schema.n_leaves == 4 * 3 * 3 * 2
