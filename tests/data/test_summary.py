"""Tests for the workload digest."""

import pytest

from repro.core.attribute import AttributeCombination
from repro.data.injection import LocalizationCase
from repro.data.summary import WorkloadSummary, summarize_cases
from tests.conftest import make_labelled_dataset


def ac(text):
    return AttributeCombination.parse(text)


@pytest.fixture
def mixed_cases(example_schema):
    one = LocalizationCase(
        "c1",
        make_labelled_dataset(example_schema, ["(a1, *, *)"]),
        (ac("(a1, *, *)"),),
    )
    two = LocalizationCase(
        "c2",
        make_labelled_dataset(example_schema, ["(a2, b2, *)", "(*, *, c1)"]),
        (ac("(a2, b2, *)"), ac("(*, *, c1)")),
    )
    return [one, two]


class TestSummarize:
    def test_counts(self, mixed_cases):
        summary = summarize_cases(mixed_cases)
        assert summary.n_cases == 2
        assert summary.total_raps == 3
        assert summary.rap_count_distribution == {1: 1, 2: 1}
        assert summary.rap_dimension_distribution == {1: 2, 2: 1}

    def test_leaf_row_bounds(self, mixed_cases):
        summary = summarize_cases(mixed_cases)
        assert summary.n_leaf_rows_min == summary.n_leaf_rows_max == 12

    def test_anomaly_ratio(self, mixed_cases):
        summary = summarize_cases(mixed_cases)
        assert summary.anomaly_ratios[0] == pytest.approx(4 / 12)

    def test_rap_coverage(self, mixed_cases):
        summary = summarize_cases(mixed_cases)
        # (a1,*,*) covers 4/12; (a2,b2,*) 2/12; (*,*,c1) 6/12.
        assert sorted(round(c, 4) for c in summary.rap_coverages) == [
            round(2 / 12, 4),
            round(4 / 12, 4),
            round(6 / 12, 4),
        ]

    def test_mixed_cuboid_fraction(self, mixed_cases):
        summary = summarize_cases(mixed_cases)
        assert summary.mixed_cuboid_fraction == pytest.approx(0.5)

    def test_empty_collection(self):
        summary = summarize_cases([])
        assert summary.n_cases == 0
        assert summary.mean_anomaly_ratio == 0.0
        assert summary.render()  # renders without crashing

    def test_render_mentions_key_facts(self, mixed_cases):
        text = summarize_cases(mixed_cases).render()
        assert "2 cases" in text
        assert "RAP dimensions" in text
        assert "mixed-cuboid cases" in text

    def test_rapmd_digest_matches_generator_properties(self):
        """The digest of a generated RAPMD must reflect Randomness 1."""
        from repro.data.rapmd import RAPMDConfig, generate_rapmd
        from repro.data.schema import cdn_schema

        cases = generate_rapmd(
            cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=12, n_days=2, seed=3)
        )
        summary = summarize_cases(cases)
        assert set(summary.rap_count_distribution) <= {1, 2, 3}
        assert set(summary.rap_dimension_distribution) <= {1, 2, 3}
        assert 0.0 < summary.mean_anomaly_ratio < 0.6
        assert summary.volume_top_decile_shares  # heavy-tailed substrate
