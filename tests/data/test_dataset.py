"""Tests for the leaf table: masks, supports, confidence, aggregation."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid
from repro.data.dataset import EPSILON, FineGrainedDataset, deviation
from repro.data.schema import schema_from_sizes


@pytest.fixture
def table(tiny_schema):
    """4 leaves: (e0_0,e1_0), (e0_0,e1_1), (e0_1,e1_0), (e0_1,e1_1)."""
    v = np.array([10.0, 20.0, 30.0, 40.0])
    f = np.array([12.0, 20.0, 33.0, 40.0])
    labels = np.array([True, True, False, False])
    return FineGrainedDataset.full(tiny_schema, v, f, labels)


class TestConstruction:
    def test_full_builds_cross_product(self, table):
        assert table.n_rows == 4
        assert table.codes.tolist() == [[0, 0], [0, 1], [1, 0], [1, 1]]

    def test_full_wrong_length_raises(self, tiny_schema):
        with pytest.raises(ValueError):
            FineGrainedDataset.full(tiny_schema, np.ones(3), np.ones(3))

    def test_from_rows_encodes_names(self, tiny_schema):
        ds = FineGrainedDataset.from_rows(
            tiny_schema,
            [(("e0_1", "e1_0"), 5.0, 6.0)],
            labels=[True],
        )
        assert ds.codes.tolist() == [[1, 0]]
        assert ds.v[0] == 5.0
        assert bool(ds.labels[0])

    def test_from_rows_wrong_arity(self, tiny_schema):
        with pytest.raises(ValueError):
            FineGrainedDataset.from_rows(tiny_schema, [(("e0_1",), 5.0, 6.0)])

    def test_codes_out_of_range_rejected(self, tiny_schema):
        with pytest.raises(ValueError):
            FineGrainedDataset(tiny_schema, np.array([[0, 5]]), np.ones(1), np.ones(1))

    def test_shape_mismatches_rejected(self, tiny_schema):
        codes = np.array([[0, 0]])
        with pytest.raises(ValueError):
            FineGrainedDataset(tiny_schema, codes, np.ones(2), np.ones(1))
        with pytest.raises(ValueError):
            FineGrainedDataset(tiny_schema, codes, np.ones(1), np.ones(1), np.ones(2, dtype=bool))

    def test_default_labels_all_normal(self, tiny_schema):
        ds = FineGrainedDataset(tiny_schema, np.array([[0, 0]]), np.ones(1), np.ones(1))
        assert ds.n_anomalous == 0

    def test_with_labels_copies(self, table):
        flipped = table.with_labels(~table.labels)
        assert flipped.n_anomalous == 2
        assert table.n_anomalous == 2
        assert flipped is not table


class TestQueries:
    def test_mask_of_wildcard_covers_all(self, table):
        total = AttributeCombination([None, None])
        assert table.mask_of(total).all()

    def test_mask_of_partial(self, table):
        ac = AttributeCombination.parse("(e0_0, *)")
        assert table.mask_of(ac).tolist() == [True, True, False, False]

    def test_support_counts(self, table):
        ac = AttributeCombination.parse("(e0_0, *)")
        assert table.support_count(ac) == 2
        assert table.anomalous_support_count(ac) == 2

    def test_confidence_values(self, table):
        assert table.confidence(AttributeCombination.parse("(e0_0, *)")) == 1.0
        assert table.confidence(AttributeCombination.parse("(e0_1, *)")) == 0.0
        assert table.confidence(AttributeCombination.parse("(*, e1_0)")) == 0.5

    def test_confidence_empty_support_is_zero(self, tiny_schema):
        partial = FineGrainedDataset(
            tiny_schema, np.array([[0, 0]]), np.ones(1), np.ones(1), np.array([True])
        )
        missing = AttributeCombination.parse("(e0_1, *)")
        assert partial.confidence(missing) == 0.0

    def test_values_of_aggregates_v_and_f(self, table):
        v, f = table.values_of(AttributeCombination.parse("(e0_0, *)"))
        assert v == pytest.approx(30.0)
        assert f == pytest.approx(32.0)

    def test_anomaly_ratio(self, table):
        assert table.anomaly_ratio == pytest.approx(0.5)

    def test_deviation_eq4(self, table):
        dev = table.deviation()
        assert dev[0] == pytest.approx((12.0 - 10.0) / (12.0 + EPSILON))
        assert dev[1] == pytest.approx(0.0)


class TestAggregation:
    def test_aggregate_single_attribute(self, table):
        agg = table.aggregate(Cuboid([0]))
        assert len(agg) == 2
        assert agg.support.tolist() == [2, 2]
        assert agg.anomalous_support.tolist() == [2, 0]
        assert agg.v_sum.tolist() == [30.0, 70.0]
        assert agg.f_sum.tolist() == [32.0, 73.0]

    def test_aggregate_confidence_matches_scalar(self, table):
        agg = table.aggregate(Cuboid([1]))
        for i in range(len(agg)):
            combination = agg.combination(i)
            assert agg.confidence[i] == pytest.approx(table.confidence(combination))

    def test_aggregate_skips_absent_combinations(self, tiny_schema):
        ds = FineGrainedDataset(
            tiny_schema,
            np.array([[0, 0], [0, 1]]),
            np.array([1.0, 2.0]),
            np.array([1.0, 2.0]),
        )
        agg = ds.aggregate(Cuboid([0]))
        assert len(agg) == 1  # e0_1 never occurs
        assert str(agg.combination(0)) == "(e0_0, *)"

    def test_aggregate_full_lattice_conservation(self, four_attr_schema):
        """Fig. 4: coarse sums equal the sum of their leaves, per cuboid."""
        rng = np.random.default_rng(5)
        n = four_attr_schema.n_leaves
        ds = FineGrainedDataset.full(
            four_attr_schema, rng.uniform(1, 10, n), rng.uniform(1, 10, n)
        )
        for indices in [[0], [1, 3], [0, 1, 2, 3]]:
            agg = ds.aggregate(Cuboid(indices))
            assert agg.v_sum.sum() == pytest.approx(ds.v.sum())
            assert agg.f_sum.sum() == pytest.approx(ds.f.sum())
            assert agg.support.sum() == n

    def test_aggregate_leaf_cuboid_is_identity(self, table):
        agg = table.aggregate(Cuboid([0, 1]))
        assert len(agg) == 4
        assert agg.support.tolist() == [1, 1, 1, 1]

    def test_combinations_decoding(self, table):
        agg = table.aggregate(Cuboid([0]))
        assert [str(c) for c in agg.combinations()] == ["(e0_0, *)", "(e0_1, *)"]

    def test_linear_keys_unique_per_combination(self, four_attr_schema):
        rng = np.random.default_rng(0)
        n = four_attr_schema.n_leaves
        ds = FineGrainedDataset.full(four_attr_schema, np.ones(n), np.ones(n))
        keys = ds.linear_keys(Cuboid([1, 2]))
        assert len(np.unique(keys)) == 9  # 3 x 3 combinations

    def test_cuboid_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.aggregate(Cuboid([9]))

    def test_linear_keys_validates_every_index(self, four_attr_schema):
        """A bad index anywhere in the tuple is caught, not just the last."""
        n = four_attr_schema.n_leaves
        ds = FineGrainedDataset.full(four_attr_schema, np.ones(n), np.ones(n))

        class FakeCuboid:
            attribute_indices = (-1, 2)

        with pytest.raises(IndexError):
            ds.linear_keys(FakeCuboid())

    def test_linear_keys_rejects_unsorted_cuboid(self, four_attr_schema):
        """Cuboid sorts its indices; duck-typed callers must not bypass that."""
        n = four_attr_schema.n_leaves
        ds = FineGrainedDataset.full(four_attr_schema, np.ones(n), np.ones(n))

        class FakeCuboid:
            attribute_indices = (2, 0)

        with pytest.raises(ValueError):
            ds.linear_keys(FakeCuboid())

        class DupCuboid:
            attribute_indices = (1, 1)

        with pytest.raises(ValueError):
            ds.linear_keys(DupCuboid())

    def test_confidence_is_memoized(self, table):
        agg = table.aggregate(Cuboid([0]))
        assert agg.confidence is agg.confidence


class TestInterchange:
    def test_to_records_roundtrip(self, table, tiny_schema):
        records = table.to_records()
        rebuilt = FineGrainedDataset.from_rows(
            tiny_schema,
            [(values, v, f) for values, v, f, __ in records],
            [label for __, __, __, label in records],
        )
        assert np.array_equal(rebuilt.codes, table.codes)
        assert np.array_equal(rebuilt.labels, table.labels)
        assert np.allclose(rebuilt.v, table.v)

    def test_repr_mentions_counts(self, table):
        assert "rows=4" in repr(table)
        assert "anomalous=2" in repr(table)


class TestDeviationFunction:
    def test_basic_value(self):
        assert deviation(np.array([5.0]), np.array([10.0]))[0] == pytest.approx(0.5)

    def test_zero_forecast_guarded(self):
        result = deviation(np.array([0.0]), np.array([0.0]))
        assert np.isfinite(result).all()
