"""Tests for derived (non-additive) KPIs (§III-A, Fig. 4)."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid
from repro.data.derived import RATIO, SAFE_DIV, DerivedKPI, MultiKPIDataset
from repro.detection.detectors import DeviationThresholdDetector


@pytest.fixture
def multi(tiny_schema):
    """4 leaves with hits and requests; hit ratio is the derived KPI."""
    codes = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
    requests_v = np.array([100.0, 200.0, 300.0, 400.0])
    requests_f = np.array([100.0, 200.0, 300.0, 400.0])
    hits_v = np.array([90.0, 100.0, 270.0, 360.0])  # leaf 1 degraded (0.5 vs 0.9)
    hits_f = np.array([90.0, 180.0, 270.0, 360.0])
    return MultiKPIDataset(
        tiny_schema,
        codes,
        {"hits": (hits_v, hits_f), "requests": (requests_v, requests_f)},
    )


HIT_RATIO = DerivedKPI("hit_ratio", ("hits", "requests"), RATIO)


class TestSafeDiv:
    def test_normal_division(self):
        assert SAFE_DIV(np.array([6.0]), np.array([3.0]))[0] == 2.0

    def test_zero_denominator(self):
        assert SAFE_DIV(np.array([6.0]), np.array([0.0]))[0] == 0.0

    def test_scalar_inputs(self):
        assert float(SAFE_DIV(6.0, 3.0)) == 2.0


class TestConstruction:
    def test_measure_names(self, multi):
        assert set(multi.measure_names) == {"hits", "requests"}

    def test_unknown_measure_rejected(self, multi):
        with pytest.raises(KeyError):
            multi.measure("latency")

    def test_empty_measures_rejected(self, tiny_schema):
        with pytest.raises(ValueError):
            MultiKPIDataset(tiny_schema, np.zeros((0, 2), dtype=np.int64), {})

    def test_mismatched_shapes_rejected(self, tiny_schema):
        codes = np.array([[0, 0]])
        with pytest.raises(ValueError):
            MultiKPIDataset(tiny_schema, codes, {"x": (np.ones(2), np.ones(1))})

    def test_derived_kpi_requires_inputs(self):
        with pytest.raises(ValueError):
            DerivedKPI("empty", (), RATIO)


class TestDerivedEvaluation:
    def test_leaf_derived_values(self, multi):
        actual, forecast = multi.leaf_derived(HIT_RATIO)
        assert actual[0] == pytest.approx(0.9)
        assert actual[1] == pytest.approx(0.5)
        assert forecast[1] == pytest.approx(0.9)

    def test_aggregate_then_transform_not_transform_then_aggregate(self, multi):
        """The ratio of sums differs from the mean of ratios — Fig. 4's order."""
        combo = AttributeCombination.parse("(e0_0, *)")
        v, f = multi.derived_values(HIT_RATIO, combo)
        assert v == pytest.approx((90.0 + 100.0) / (100.0 + 200.0))
        mean_of_ratios = (0.9 + 0.5) / 2.0
        assert v != pytest.approx(mean_of_ratios)
        assert f == pytest.approx(0.9)

    def test_derived_cuboid_matches_scalar(self, multi):
        codes, v, f = multi.derived_cuboid(HIT_RATIO, Cuboid([0]))
        assert codes.shape == (2, 1)
        for i in range(2):
            element = multi.schema.decode(0, int(codes[i, 0]))
            combo = AttributeCombination([element, None])
            sv, sf = multi.derived_values(HIT_RATIO, combo)
            assert v[i] == pytest.approx(sv)
            assert f[i] == pytest.approx(sf)

    def test_total_combination(self, multi):
        total = AttributeCombination([None, None])
        v, __ = multi.derived_values(HIT_RATIO, total)
        assert v == pytest.approx((90 + 100 + 270 + 360) / 1000.0)


class TestLabelByDerived:
    def test_detector_sees_derived_pair(self, multi):
        # hit ratio of leaf 1 dropped 0.9 -> 0.5: Dev = (0.9-0.5)/0.9 = 0.44.
        detector = DeviationThresholdDetector(threshold=0.2)
        labelled = multi.label_by_derived(HIT_RATIO, detector)
        assert labelled.labels.tolist() == [False, True, False, False]

    def test_values_come_from_requested_measure(self, multi):
        detector = DeviationThresholdDetector(threshold=0.2)
        labelled = multi.label_by_derived(HIT_RATIO, detector, measure_for_values="requests")
        assert labelled.v.tolist() == [100.0, 200.0, 300.0, 400.0]

    def test_rapminer_localizes_derived_kpi_anomaly(self, multi):
        """The paper's generality claim: labels in, RAPs out — no derived-KPI
        special-casing anywhere in RAPMiner."""
        from repro.core.config import RAPMinerConfig
        from repro.core.miner import RAPMiner

        detector = DeviationThresholdDetector(threshold=0.2)
        labelled = multi.label_by_derived(HIT_RATIO, detector)
        patterns = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False)).localize(
            labelled, k=1
        )
        assert patterns == [AttributeCombination.parse("(e0_0, e1_1)")]


class TestEndToEndDerivedScenario:
    def test_cache_hit_ratio_incident(self, four_attr_schema):
        """A cache cluster failure drops the hit ratio of one location while
        request volumes stay flat — only a derived KPI can see it."""
        rng = np.random.default_rng(11)
        n = four_attr_schema.n_leaves
        grids = np.meshgrid(
            *[np.arange(s) for s in four_attr_schema.sizes], indexing="ij"
        )
        codes = np.stack([g.reshape(-1) for g in grids], axis=1)
        requests = rng.uniform(100.0, 1000.0, n)
        hit_rate = np.full(n, 0.95)
        affected = codes[:, 0] == 2
        degraded = hit_rate.copy()
        degraded[affected] = 0.4
        multi = MultiKPIDataset(
            four_attr_schema,
            codes,
            {
                "hits": (requests * degraded, requests * hit_rate),
                "requests": (requests, requests.copy()),
            },
        )
        kpi = DerivedKPI("hit_ratio", ("hits", "requests"), RATIO)
        labelled = multi.label_by_derived(
            kpi, DeviationThresholdDetector(threshold=0.3)
        )
        from repro.core.miner import RAPMiner

        patterns = RAPMiner().localize(labelled, k=1)
        expected = AttributeCombination(
            [four_attr_schema.elements(0)[2], None, None, None]
        )
        assert patterns == [expected]
