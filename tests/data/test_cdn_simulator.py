"""Tests for the synthetic CDN traffic substrate."""

import numpy as np
import pytest

from repro.data.cdn_simulator import STEPS_PER_DAY, CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema


@pytest.fixture
def simulator():
    return CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=11))


class TestConstruction:
    def test_requires_four_attributes(self):
        from repro.data.schema import schema_from_sizes

        with pytest.raises(ValueError):
            CDNSimulator(schema_from_sizes([2, 2]))

    def test_inactive_fraction_thins_leaves(self):
        schema = cdn_schema(6, 2, 2, 5)
        dense = CDNSimulator(schema, CDNSimulatorConfig(inactive_fraction=0.0, seed=1))
        sparse = CDNSimulator(schema, CDNSimulatorConfig(inactive_fraction=0.5, seed=1))
        assert dense.n_active_leaves == schema.n_leaves
        assert sparse.n_active_leaves < dense.n_active_leaves
        assert sparse.n_active_leaves > 0

    def test_deterministic_under_seed(self):
        schema = cdn_schema(6, 2, 2, 5)
        a = CDNSimulator(schema, CDNSimulatorConfig(seed=3)).snapshot(100)
        b = CDNSimulator(schema, CDNSimulatorConfig(seed=3)).snapshot(100)
        assert np.array_equal(a.codes, b.codes)
        assert np.allclose(a.v, b.v)

    def test_different_seeds_differ(self):
        schema = cdn_schema(6, 2, 2, 5)
        a = CDNSimulator(schema, CDNSimulatorConfig(seed=3)).snapshot(100)
        b = CDNSimulator(schema, CDNSimulatorConfig(seed=4)).snapshot(100)
        assert not np.allclose(a.v[: min(len(a.v), len(b.v))], b.v[: min(len(a.v), len(b.v))])


class TestSeasonality:
    def test_factor_bounded(self, simulator):
        cfg = simulator.config
        for step in range(0, STEPS_PER_DAY, 97):
            factor = simulator.seasonal_factor(step)
            assert cfg.trough_to_peak - 1e-9 <= factor <= 1.0 + 1e-9

    def test_daily_period(self, simulator):
        assert simulator.seasonal_factor(100) == pytest.approx(
            simulator.seasonal_factor(100 + STEPS_PER_DAY)
        )

    def test_evening_peak_exceeds_morning(self, simulator):
        evening = simulator.seasonal_factor(21 * 60)
        morning = simulator.seasonal_factor(9 * 60)
        assert evening > morning

    def test_peak_total_volume_scale(self):
        schema = cdn_schema(6, 2, 2, 5)
        cfg = CDNSimulatorConfig(seed=5, total_peak_volume=5.0e5)
        sim = CDNSimulator(schema, cfg)
        peak = sim.expected_values(21 * 60).sum()
        assert peak == pytest.approx(5.0e5, rel=1e-6)


class TestSnapshots:
    def test_snapshot_shapes_consistent(self, simulator):
        snap = simulator.snapshot(300)
        assert snap.codes.shape == (simulator.n_active_leaves, 4)
        assert snap.v.shape == snap.f.shape == (simulator.n_active_leaves,)

    def test_values_positive(self, simulator):
        snap = simulator.snapshot(300)
        assert (snap.v > 0).all()
        assert (snap.f > 0).all()

    def test_forecast_is_noise_free_baseline(self, simulator):
        snap = simulator.snapshot(300)
        assert np.allclose(snap.f, simulator.expected_values(300))

    def test_to_dataset(self, simulator):
        ds = simulator.snapshot(300).to_dataset()
        assert ds.n_rows == simulator.n_active_leaves
        assert ds.n_anomalous == 0

    def test_heavy_tail_across_leaves(self, simulator):
        """A handful of leaves should dominate the volume (Zipf websites)."""
        snap = simulator.snapshot(300)
        ordered = np.sort(snap.v)[::-1]
        top_decile = ordered[: max(1, len(ordered) // 10)].sum()
        assert top_decile > 0.4 * ordered.sum()


class TestSeries:
    def test_generate_series_shapes(self, simulator):
        values, expected = simulator.generate_series(5, start_step=10)
        assert values.shape == expected.shape == (5, simulator.n_active_leaves)

    def test_generate_series_rejects_negative(self, simulator):
        with pytest.raises(ValueError):
            simulator.generate_series(-1)

    def test_noise_around_baseline(self, simulator):
        values, expected = simulator.generate_series(20)
        ratio = values / expected
        assert abs(np.log(ratio).mean()) < 0.05
