"""Tests for RAP sampling and Dev-based failure injection (Eq. 4/5)."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid
from repro.data.dataset import FineGrainedDataset, deviation
from repro.data.injection import InjectionConfig, inject_failures, sample_raps
from repro.data.schema import schema_from_sizes


@pytest.fixture
def background(four_attr_schema):
    rng = np.random.default_rng(9)
    n = four_attr_schema.n_leaves
    v = rng.uniform(50.0, 150.0, n)
    return FineGrainedDataset.full(four_attr_schema, v, v.copy())


class TestSampleRaps:
    def test_samples_requested_count(self, background):
        rng = np.random.default_rng(1)
        raps = sample_raps(background, 3, rng)
        assert len(raps) == 3

    def test_raps_mutually_incomparable(self, background):
        rng = np.random.default_rng(2)
        raps = sample_raps(background, 3, rng)
        for i, a in enumerate(raps):
            for b in raps[i + 1 :]:
                assert a != b
                assert not a.is_ancestor_of(b)
                assert not b.is_ancestor_of(a)

    def test_respects_dimensions(self, background):
        rng = np.random.default_rng(3)
        raps = sample_raps(background, 4, rng, dimensions=[2])
        assert all(r.layer == 2 for r in raps)

    def test_respects_fixed_cuboid(self, background):
        rng = np.random.default_rng(4)
        cuboid = Cuboid([0, 3])
        raps = sample_raps(background, 2, rng, cuboid=cuboid)
        assert all(r.specified_indices == (0, 3) for r in raps)

    def test_min_support_respected(self, background):
        rng = np.random.default_rng(5)
        raps = sample_raps(background, 2, rng, min_support=6)
        assert all(background.support_count(r) >= 6 for r in raps)

    def test_max_coverage_respected(self, background):
        rng = np.random.default_rng(6)
        raps = sample_raps(background, 2, rng, max_coverage=0.4)
        assert all(
            background.support_count(r) <= 0.4 * background.n_rows for r in raps
        )

    def test_impossible_request_raises(self, tiny_schema):
        ds = FineGrainedDataset.full(tiny_schema, np.ones(4), np.ones(4))
        rng = np.random.default_rng(7)
        with pytest.raises(RuntimeError):
            # 2x2 schema cannot host 10 disjoint high-support RAPs.
            sample_raps(ds, 10, rng, min_support=3, max_attempts=30)


class TestInjection:
    def test_ground_truth_matches_rap_masks(self, background):
        rng = np.random.default_rng(8)
        raps = sample_raps(background, 2, rng)
        __, truth = inject_failures(background, raps, rng)
        expected = np.zeros(background.n_rows, dtype=bool)
        for rap in raps:
            expected |= background.mask_of(rap)
        assert np.array_equal(truth, expected)

    def test_actual_values_untouched(self, background):
        rng = np.random.default_rng(9)
        raps = sample_raps(background, 1, rng)
        labelled, __ = inject_failures(background, raps, rng)
        assert np.array_equal(labelled.v, background.v)

    def test_eq5_reconstruction_roundtrips_dev(self, background):
        """Recomputing Eq. 4 on the injected forecast recovers the drawn Dev."""
        rng = np.random.default_rng(10)
        raps = sample_raps(background, 1, rng)
        cfg = InjectionConfig()
        labelled, truth = inject_failures(background, raps, rng, cfg)
        dev = deviation(labelled.v, labelled.f, cfg.epsilon)
        lo, hi = cfg.anomalous_dev_range
        assert (dev[truth] >= lo - 1e-9).all()
        assert (dev[truth] <= hi + 1e-9).all()
        nlo, nhi = cfg.normal_dev_range
        assert (dev[~truth] >= nlo - 1e-9).all()
        assert (dev[~truth] <= nhi + 1e-9).all()

    def test_default_labels_match_truth_when_noise_free(self, background):
        rng = np.random.default_rng(11)
        raps = sample_raps(background, 2, rng)
        labelled, truth = inject_failures(background, raps, rng)
        assert np.array_equal(labelled.labels, truth)

    def test_per_rap_dev_vertical_assumption(self, background):
        """All leaves of one RAP share its deviation exactly."""
        rng = np.random.default_rng(12)
        raps = sample_raps(background, 2, rng)
        cfg = InjectionConfig()
        labelled, __ = inject_failures(
            background, raps, rng, cfg, per_rap_dev=[0.3, 0.6]
        )
        dev = deviation(labelled.v, labelled.f, cfg.epsilon)
        for rap, expected_dev in zip(raps, [0.3, 0.6]):
            mask = background.mask_of(rap)
            assert np.allclose(dev[mask], expected_dev, atol=1e-9)

    def test_per_rap_dev_length_mismatch(self, background):
        rng = np.random.default_rng(13)
        raps = sample_raps(background, 2, rng)
        with pytest.raises(ValueError):
            inject_failures(background, raps, rng, per_rap_dev=[0.5])

    def test_label_noise_flips_some_labels(self, background):
        rng = np.random.default_rng(14)
        raps = sample_raps(background, 1, rng)
        cfg = InjectionConfig(label_noise=0.3)
        labelled, truth = inject_failures(background, raps, rng, cfg)
        assert (labelled.labels != truth).any()

    def test_custom_detection_threshold(self, background):
        rng = np.random.default_rng(15)
        raps = sample_raps(background, 1, rng)
        cfg = InjectionConfig(detection_threshold=0.95)  # above every Dev
        labelled, __ = inject_failures(background, raps, rng, cfg)
        assert labelled.n_anomalous == 0

    def test_threshold_default_midpoint(self):
        cfg = InjectionConfig(anomalous_dev_range=(0.2, 0.8), normal_dev_range=(-0.1, 0.1))
        assert cfg.threshold() == pytest.approx(0.15)

    def test_no_raps_all_normal(self, background):
        rng = np.random.default_rng(16)
        labelled, truth = inject_failures(background, [], rng)
        assert labelled.n_anomalous == 0
        assert not truth.any()
