"""Tests for the RAPMD generator (§V-A Randomness 1 & 2)."""

import numpy as np
import pytest

from repro.data.dataset import deviation
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema


@pytest.fixture(scope="module")
def rapmd_cases():
    config = RAPMDConfig(n_cases=10, n_days=3, seed=42)
    return generate_rapmd(cdn_schema(6, 2, 2, 5), config)


class TestGeneration:
    def test_case_count(self, rapmd_cases):
        assert len(rapmd_cases) == 10

    def test_case_ids_unique(self, rapmd_cases):
        assert len({c.case_id for c in rapmd_cases}) == 10

    def test_rap_count_in_range(self, rapmd_cases):
        """Randomness 1: between 1 and 3 RAPs per time point."""
        for case in rapmd_cases:
            assert 1 <= case.n_raps <= 3

    def test_rap_counts_vary_across_cases(self, rapmd_cases):
        assert len({case.n_raps for case in rapmd_cases}) > 1

    def test_rap_dimensions_within_configured(self, rapmd_cases):
        for case in rapmd_cases:
            for rap in case.true_raps:
                assert rap.layer in (1, 2, 3)

    def test_mixed_cuboids_allowed(self, rapmd_cases):
        """Randomness 1: RAPs of one case may live in different cuboids."""
        mixed = any(
            len({rap.specified_indices for rap in case.true_raps}) > 1
            for case in rapmd_cases
            if case.n_raps > 1
        )
        assert mixed

    def test_metadata_records_step_and_count(self, rapmd_cases):
        for case in rapmd_cases:
            assert "step" in case.metadata
            assert case.metadata["n_raps"] == case.n_raps

    def test_deterministic_under_seed(self):
        config = RAPMDConfig(n_cases=3, n_days=2, seed=7)
        schema = cdn_schema(5, 2, 2, 4)
        a = generate_rapmd(schema, config)
        b = generate_rapmd(schema, config)
        assert [c.true_raps for c in a] == [c.true_raps for c in b]
        for ca, cb in zip(a, b):
            assert np.allclose(ca.dataset.f, cb.dataset.f)


class TestRandomness2:
    def test_per_leaf_deviations_vary_within_one_rap(self, rapmd_cases):
        """RAPMD deliberately breaks the vertical assumption."""
        cfg = RAPMDConfig().injection
        spread_seen = False
        for case in rapmd_cases:
            dev = deviation(case.dataset.v, case.dataset.f, cfg.epsilon)
            for rap in case.true_raps:
                mask = case.dataset.mask_of(rap)
                if mask.sum() >= 4 and dev[mask].std() > 0.05:
                    spread_seen = True
        assert spread_seen

    def test_anomalous_devs_in_paper_range(self, rapmd_cases):
        cfg = RAPMDConfig().injection
        for case in rapmd_cases:
            dev = deviation(case.dataset.v, case.dataset.f, cfg.epsilon)
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            assert (dev[truth] >= 0.1 - 1e-9).all()
            assert (dev[truth] <= 0.9 + 1e-9).all()
            assert (dev[~truth] <= 0.09 + 1e-9).all()

    def test_labels_flag_exactly_the_injected_scope(self, rapmd_cases):
        for case in rapmd_cases:
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            assert np.array_equal(case.dataset.labels, truth)
