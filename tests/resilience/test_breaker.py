"""Retry policy, circuit-breaker state machine, and guarded_call."""

import pytest

from repro import obs
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    guarded_call,
)


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRetryPolicy:
    def test_exponential_delays(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = ManualClock()
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("recovery_time", 10.0)
        return CircuitBreaker(clock=clock, **kwargs), clock

    def test_opens_after_threshold(self):
        breaker, _ = self.make()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_after_cooldown(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # half-opens
        assert breaker.state == "half_open"

    def test_half_open_success_closes(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_half_open_failure_reopens(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # cool-down restarted

    def test_call_raises_when_open(self):
        breaker, _ = self.make(failure_threshold=1)
        with pytest.raises(RuntimeError):
            breaker.call(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 42)

    def test_call_passes_through(self):
        breaker, _ = self.make()
        assert breaker.call(lambda x: x + 1, 41) == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_time=-1.0)

    def test_transitions_counted(self):
        with obs.capture() as collector:
            breaker, clock = self.make(failure_threshold=1, recovery_time=1.0)
            breaker.record_failure()  # -> open
            clock.advance(1.0)
            breaker.allow()  # -> half_open
            breaker.record_success()  # -> closed
        metrics = collector.metrics
        for state in ("open", "half_open", "closed"):
            assert metrics.value(
                "resilience_breaker_transitions_total",
                {"breaker": breaker.name, "state": state},
            ) == 1.0


def no_sleep_retry(max_attempts=2):
    return RetryPolicy(max_attempts=max_attempts, sleep=lambda _s: None)


class TestGuardedCall:
    def test_success_first_try(self):
        result, error = guarded_call(lambda: 7, retry=no_sleep_retry())
        assert (result, error) == (7, None)

    def test_retry_then_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return "ok"

        with obs.capture() as collector:
            result, error = guarded_call(
                flaky, retry=no_sleep_retry(), stage="forecast"
            )
        assert (result, error) == ("ok", None)
        assert len(calls) == 2
        assert collector.metrics.value(
            "resilience_retry_total", {"stage": "forecast"}
        ) == 1.0

    def test_exhaustion_returns_error(self):
        def broken():
            raise RuntimeError("permanent")

        with obs.capture() as collector:
            result, error = guarded_call(
                broken, retry=no_sleep_retry(), stage="detect"
            )
        assert result is None
        assert isinstance(error, RuntimeError)
        assert collector.metrics.value(
            "resilience_stage_failures_total", {"stage": "detect"}
        ) == 1.0

    def test_backoff_sleeps_between_attempts(self):
        slept = []
        retry = RetryPolicy(
            max_attempts=3, backoff_base=0.5, backoff_factor=2.0, sleep=slept.append
        )

        def broken():
            raise RuntimeError("permanent")

        guarded_call(broken, retry=retry)
        assert slept == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_breaker_records_outcomes(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=ManualClock())

        def broken():
            raise RuntimeError("boom")

        result, error = guarded_call(broken, retry=no_sleep_retry(2), breaker=breaker)
        assert result is None
        assert breaker.state == "open"  # both attempts recorded

    def test_open_breaker_short_circuits(self):
        breaker = CircuitBreaker(failure_threshold=1, clock=ManualClock())
        breaker.record_failure()
        calls = []
        result, error = guarded_call(
            lambda: calls.append(1), retry=no_sleep_retry(), breaker=breaker
        )
        assert result is None
        assert isinstance(error, CircuitOpenError)
        assert calls == []  # never invoked

    def test_forwards_arguments(self):
        result, error = guarded_call(
            lambda a, b=0: a + b, 40, b=2, retry=no_sleep_retry()
        )
        assert (result, error) == (42, None)
