"""Fault-injection acceptance suite for the hardened serving path.

Drives the :mod:`repro.resilience.chaos` harness through
:class:`~repro.service.pipeline.LocalizationService`: NaN lanes,
truncated value vectors, flaky and slow stages, and a tight deadline on a
10k-leaf case.  Every scenario must end in a well-formed
:class:`IncidentReport` (or a clean quiet interval) — never an exception.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.schema import schema_from_sizes
from repro.detection.detectors import DeviationThresholdDetector
from repro.detection.forecasting import SeasonalNaiveForecaster
from repro.obs.export import prometheus_text
from repro.resilience import DegradationPolicy, RetryPolicy
from repro.resilience.chaos import (
    ChaosConfig,
    FlakyDetector,
    FlakyForecaster,
    SlowDetector,
    corrupt_values,
)
from repro.service.alarm import DeviationAlarm
from repro.service.pipeline import LocalizationService
from tests.conftest import make_labelled_dataset

N_WARMUP = 3


def build_service(schema_sizes=(6, 4, 4), **overrides):
    """A warmed-up service over a constant-traffic leaf population."""
    schema = schema_from_sizes(list(schema_sizes))
    base = make_labelled_dataset(schema, [])
    kwargs = dict(
        schema=schema,
        codes=base.codes,
        forecaster=SeasonalNaiveForecaster(period=1),
        detector=DeviationThresholdDetector(threshold=0.3),
        alarm=DeviationAlarm(threshold=0.05),
        history_capacity=8,
        min_history=N_WARMUP,
    )
    kwargs.update(overrides)
    service = LocalizationService(**kwargs)
    service.warm_up(np.tile(base.v, (N_WARMUP, 1)))
    return service, base


def crash_scope(service, values, element_code=0, factor=0.2):
    out = values.copy()
    out[service.codes[:, 0] == element_code] *= factor
    return out


class TestCorruptValues:
    def test_deterministic_under_seed(self):
        values = np.arange(100.0)
        config = ChaosConfig(seed=7, nan_fraction=0.1, truncate_fraction=0.05)
        first = corrupt_values(values, config, step=3)
        second = corrupt_values(values, config, step=3)
        np.testing.assert_array_equal(first, second)
        assert np.isnan(first).sum() == 10
        assert first.shape[0] == 95

    def test_different_steps_damage_different_lanes(self):
        values = np.arange(100.0)
        config = ChaosConfig(seed=7, nan_fraction=0.1)
        a = corrupt_values(values, config, step=0)
        b = corrupt_values(values, config, step=1)
        assert not np.array_equal(np.isnan(a), np.isnan(b))

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(nan_fraction=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(truncate_fraction=1.0)


class TestMalformedInputs:
    def test_nan_lanes_never_manufacture_an_incident(self):
        service, base = build_service()
        damaged = corrupt_values(
            base.v, ChaosConfig(seed=1, nan_fraction=0.05), step=0
        )
        assert service.observe(damaged) is None  # on-trend after sanitizing
        assert service.malformed_inputs == 1
        # The sanitized row entered the history finite.
        assert np.isfinite(service.history.to_matrix()[-1]).all()

    def test_truncated_vector_is_padded(self):
        service, base = build_service()
        short = base.v[: base.v.shape[0] // 2]
        assert service.observe(short) is None
        assert service.malformed_inputs == 2  # length + the NaN padding
        assert np.isfinite(service.history.to_matrix()[-1]).all()

    def test_oversized_vector_is_truncated(self):
        service, base = build_service()
        long = np.concatenate([base.v, base.v[:5]])
        assert service.observe(long) is None
        assert service.history.to_matrix()[-1].shape[0] == base.v.shape[0]

    def test_clean_inputs_pass_through_untouched(self):
        service, base = build_service()
        values = base.v.copy()
        assert service.observe(values) is None
        np.testing.assert_array_equal(service.history.to_matrix()[-1], values)
        assert service.malformed_inputs == 0

    def test_damaged_incident_still_localizes(self):
        service, base = build_service()
        crashed = crash_scope(service, base.v)
        damaged = corrupt_values(
            crashed, ChaosConfig(seed=2, nan_fraction=0.02), step=1
        )
        report = service.observe(damaged)
        assert report is not None
        assert str(report.patterns[0]).startswith("(e0_0")
        assert report.degraded_stages == []


class TestFlakyStages:
    def fast_retry(self):
        return RetryPolicy(max_attempts=2, sleep=lambda _s: None)

    def test_flaky_forecaster_recovers_via_retry(self):
        inner = SeasonalNaiveForecaster(period=1)
        service, base = build_service(
            forecaster=FlakyForecaster(inner, fail_times=1), retry=self.fast_retry()
        )
        report = service.observe(crash_scope(service, base.v))
        assert report is not None
        assert report.degraded_stages == []  # retry succeeded, no fallback

    def test_dead_forecaster_falls_back_to_last_row(self):
        inner = SeasonalNaiveForecaster(period=1)
        service, base = build_service(
            forecaster=FlakyForecaster(inner, fail_times=10), retry=self.fast_retry()
        )
        report = service.observe(crash_scope(service, base.v))
        assert report is not None  # persistence forecast still alarms
        assert "forecast" in report.degraded_stages

    def test_dead_detector_falls_back_to_default(self):
        inner = DeviationThresholdDetector(threshold=0.3)
        service, base = build_service(
            detector=FlakyDetector(inner, fail_times=10), retry=self.fast_retry()
        )
        report = service.observe(crash_scope(service, base.v))
        assert report is not None
        assert "detect" in report.degraded_stages
        assert str(report.patterns[0]).startswith("(e0_0")

    def test_breaker_opens_after_repeated_interval_failures(self):
        inner = SeasonalNaiveForecaster(period=1)
        service, base = build_service(
            forecaster=FlakyForecaster(inner, fail_times=100),
            retry=self.fast_retry(),
        )
        for _ in range(3):
            service.observe(base.v)
        assert service.forecast_breaker.state == "open"
        # Open breaker: the stage is skipped outright, fallback still works.
        calls_before = service.forecaster.calls
        assert service.observe(base.v) is None
        assert service.forecaster.calls == calls_before

    def test_crashing_localizer_yields_escalation_report(self):
        class BrokenLocalizer:
            name = "broken"

            def localize(self, dataset, k=None):
                raise RuntimeError("injected localizer crash")

        service, base = build_service(localizer=BrokenLocalizer())
        report = service.observe(crash_scope(service, base.v))
        assert report is not None
        assert report.scopes == []
        assert report.stop_reason == "localizer_error"
        assert "localize" in report.degraded_stages
        assert "manual triage" in report.render()


class TestAcceptance:
    """The ISSUE's bar: injected faults + 50 ms deadline on a 10k-leaf case."""

    def test_faulted_deadline_run_returns_well_formed_report(self):
        inner_detector = DeviationThresholdDetector(threshold=0.3)
        service, base = build_service(
            schema_sizes=(10, 10, 10, 10),  # 10k leaves
            forecaster=FlakyForecaster(SeasonalNaiveForecaster(period=1), fail_times=2),
            detector=SlowDetector(inner_detector, delay_s=0.08),
            retry=RetryPolicy(max_attempts=2, sleep=lambda _s: None),
            deadline_ms=50.0,
            degradation=DegradationPolicy(),
            localizer=RAPMiner(),
        )
        crashed = crash_scope(service, base.v)
        damaged = corrupt_values(
            crashed, ChaosConfig(seed=5, nan_fraction=0.01, truncate_fraction=0.01),
            step=0,
        )
        with obs.capture() as collector:
            report = service.observe(damaged)
        assert report is not None
        # Budget drained by the slow detector before the search started:
        # the report is partial but structurally complete.
        assert report.stop_reason == "deadline"
        assert report.partial
        assert report.degradation_tier == "layer_capped"
        assert "forecast" in report.degraded_stages
        text = report.render()
        assert "INCIDENT" in text
        assert "partial" in text
        assert "degraded stages" in text
        # The whole story is on the Prometheus surface.
        exposition = prometheus_text(collector.metrics)
        assert "resilience_stop_reason_total" in exposition
        assert 'reason="deadline"' in exposition
        assert 'tier="layer_capped"' in exposition
        assert "resilience_malformed_inputs_total" in exposition
        assert "resilience_fallback_total" in exposition

    def test_clean_run_reports_stop_reason_and_no_degradation(self):
        # The bugfix satellite: stop_reason surfaces on clean reports too.
        service, base = build_service(localizer=RAPMiner())
        report = service.observe(crash_scope(service, base.v))
        assert report is not None
        assert report.stop_reason in ("coverage_early_stop", "lattice_exhausted")
        assert not report.partial
        assert report.degradation_tier is None
        assert report.degraded_stages == []
        assert "partial" not in report.render()

    def test_clean_run_candidates_match_direct_miner(self):
        # No faults, no deadline: the hardened pipeline must be
        # bit-identical to calling the miner on the labelled table.
        from repro.data.dataset import FineGrainedDataset

        service, base = build_service(localizer=RAPMiner())
        crashed = crash_scope(service, base.v)
        report = service.observe(crashed)
        forecast = base.v  # seasonal-naive(period=1) over a constant history
        table = FineGrainedDataset(base.schema, base.codes, crashed, forecast)
        labelled = table.with_labels(
            DeviationThresholdDetector(threshold=0.3).detect(crashed, forecast)
        )
        direct = RAPMiner().run(labelled, k=service.max_scopes)
        assert report.patterns == direct.patterns
