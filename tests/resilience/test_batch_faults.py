"""Worker-fault tolerance of the process-pool batch layer.

A shard whose worker raises is requeued once on a fresh executor; a
shard that fails twice degrades to per-case error records.  Either way
``batch_localize`` completes and keeps input order.
"""

import pytest

from repro import RAPMiner, obs
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.parallel import BatchConfig, batch_localize
from repro.resilience.chaos import (
    AlwaysCrashLocalizer,
    CrashOnceLocalizer,
    WorkerCrash,
)


def make_cases(n_cases=4):
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=n_cases, n_days=2, seed=9)
    )


class TestCrashOnceRequeue:
    def test_requeued_shard_completes_with_correct_results(self, tmp_path):
        cases = make_cases()
        marker = str(tmp_path / "crash.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        with obs.capture() as collector:
            evaluation = batch_localize(
                method, cases, k=3, config=BatchConfig(n_workers=2)
            )
        serial = run_cases(RAPMiner(), make_cases(), k=3)
        assert [r.case_id for r in evaluation.results] == [
            r.case_id for r in serial.results
        ]
        assert evaluation.failures() == []
        for got, want in zip(evaluation.results, serial.results):
            assert got.predicted == want.predicted
            assert got.error is None
        assert collector.metrics.value("resilience_shard_requeues_total") >= 1.0
        assert collector.metrics.value("resilience_case_errors_total") == 0.0

    def test_chaos_latch_is_cross_process(self, tmp_path):
        marker = str(tmp_path / "latch.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        case = make_cases(1)[0]
        with pytest.raises(WorkerCrash):
            method.localize(case.dataset, 3)
        # Second call (any process that sees the marker) delegates.
        assert method.localize(case.dataset, 3) == RAPMiner().localize(
            case.dataset, 3
        )


class TestPersistentCrash:
    def test_batch_completes_with_error_records(self):
        cases = make_cases()
        with obs.capture() as collector:
            evaluation = batch_localize(
                AlwaysCrashLocalizer(), cases, k=3, config=BatchConfig(n_workers=2)
            )
        assert [r.case_id for r in evaluation.results] == [
            c.case_id for c in cases
        ]
        for result in evaluation.results:
            assert result.predicted == []
            assert result.error is not None
            assert "WorkerCrash" in result.error
            assert result.f1 == 0.0  # aggregations keep working
        assert len(evaluation.failures()) == len(cases)
        assert collector.metrics.value("resilience_case_errors_total") == float(
            len(cases)
        )
        # Every shard got its one requeue before degrading.
        assert collector.metrics.value("resilience_shard_requeues_total") == 2.0

    def test_partial_failure_keeps_healthy_shards(self, tmp_path):
        # chunk_size=1: four single-case shards; one method crash latch
        # means at most one shard ever crashes per attempt wave.
        cases = make_cases()
        marker = str(tmp_path / "one.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        evaluation = batch_localize(
            method,
            cases,
            k=3,
            config=BatchConfig(n_workers=2, chunk_size=1, transport="pickle"),
        )
        serial = run_cases(RAPMiner(), make_cases(), k=3)
        assert evaluation.failures() == []
        for got, want in zip(evaluation.results, serial.results):
            assert got.predicted == want.predicted
