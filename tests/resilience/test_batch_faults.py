"""Worker-fault tolerance of the process-pool batch layer.

A shard whose worker raises is requeued once onto a single lazily-built
requeue executor shared by the whole batch (the primary pool may be
broken and is never reused); a shard that fails twice degrades to
per-case error records.  Either way ``batch_localize`` completes and
keeps input order.
"""

import pytest

from repro import RAPMiner, obs
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.runner import run_cases
from repro.parallel import BatchConfig, batch_localize
from repro.resilience.chaos import (
    AlwaysCrashLocalizer,
    CrashOnceLocalizer,
    WorkerCrash,
)


def make_cases(n_cases=4):
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=n_cases, n_days=2, seed=9)
    )


class TestCrashOnceRequeue:
    def test_requeued_shard_completes_with_correct_results(self, tmp_path):
        cases = make_cases()
        marker = str(tmp_path / "crash.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        with obs.capture() as collector:
            evaluation = batch_localize(
                method, cases, k=3, config=BatchConfig(n_workers=2)
            )
        serial = run_cases(RAPMiner(), make_cases(), k=3)
        assert [r.case_id for r in evaluation.results] == [
            r.case_id for r in serial.results
        ]
        assert evaluation.failures() == []
        for got, want in zip(evaluation.results, serial.results):
            assert got.predicted == want.predicted
            assert got.error is None
        assert collector.metrics.value("resilience_shard_requeues_total") >= 1.0
        assert collector.metrics.value("resilience_case_errors_total") == 0.0

    def test_chaos_latch_is_cross_process(self, tmp_path):
        marker = str(tmp_path / "latch.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        case = make_cases(1)[0]
        with pytest.raises(WorkerCrash):
            method.localize(case.dataset, 3)
        # Second call (any process that sees the marker) delegates.
        assert method.localize(case.dataset, 3) == RAPMiner().localize(
            case.dataset, 3
        )


class TestPersistentCrash:
    def test_batch_completes_with_error_records(self):
        cases = make_cases()
        with obs.capture() as collector:
            evaluation = batch_localize(
                AlwaysCrashLocalizer(), cases, k=3, config=BatchConfig(n_workers=2)
            )
        assert [r.case_id for r in evaluation.results] == [
            c.case_id for c in cases
        ]
        for result in evaluation.results:
            assert result.predicted == []
            assert result.error is not None
            assert "WorkerCrash" in result.error
            assert result.f1 == 0.0  # aggregations keep working
        assert len(evaluation.failures()) == len(cases)
        assert collector.metrics.value("resilience_case_errors_total") == float(
            len(cases)
        )
        # Every shard got its one requeue before degrading.
        assert collector.metrics.value("resilience_shard_requeues_total") == 2.0

    def test_partial_failure_keeps_healthy_shards(self, tmp_path):
        # chunk_size=1: four single-case shards; one method crash latch
        # means at most one shard ever crashes per attempt wave.
        cases = make_cases()
        marker = str(tmp_path / "one.marker")
        method = CrashOnceLocalizer(RAPMiner(), marker)
        evaluation = batch_localize(
            method,
            cases,
            k=3,
            config=BatchConfig(n_workers=2, chunk_size=1, transport="pickle"),
        )
        serial = run_cases(RAPMiner(), make_cases(), k=3)
        assert evaluation.failures() == []
        for got, want in zip(evaluation.results, serial.results):
            assert got.predicted == want.predicted


class TestRequeuePool:
    """The requeue path reuses one executor and reports its latency."""

    def _histogram_count(self, collector, name):
        for entry in collector.metrics.snapshot():
            if entry["name"] == name and entry["kind"] == "histogram":
                return entry["count"]
        return 0

    def test_requeue_latency_lands_in_histogram(self, tmp_path):
        cases = make_cases()
        marker = str(tmp_path / "crash.marker")
        with obs.capture() as collector:
            evaluation = batch_localize(
                CrashOnceLocalizer(RAPMiner(), marker),
                cases,
                k=3,
                config=BatchConfig(n_workers=2),
            )
        assert evaluation.failures() == []
        requeues = collector.metrics.value("resilience_shard_requeues_total")
        assert requeues >= 1.0
        assert self._histogram_count(
            collector, "resilience_requeue_seconds"
        ) == requeues

    def test_one_requeue_executor_per_batch(self, monkeypatch):
        """Two crashing shards must share one requeue pool, not get one each."""
        from repro.parallel import batch as batch_module

        built = []
        real_executor = batch_module.ProcessPoolExecutor

        class CountingExecutor(real_executor):
            def __init__(self, *args, **kwargs):
                built.append(self)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch_module, "ProcessPoolExecutor", CountingExecutor)
        cases = make_cases()
        with obs.capture() as collector:
            evaluation = batch_localize(
                AlwaysCrashLocalizer(), cases, k=3, config=BatchConfig(n_workers=2)
            )
        # Both shards crash and are requeued, yet only two executors ever
        # exist: the primary pool and the shared requeue pool.
        assert collector.metrics.value("resilience_shard_requeues_total") == 2.0
        assert len(built) == 2
        assert len(evaluation.failures()) == len(cases)

    def test_retries_overlap_remaining_primary_shards(self, tmp_path):
        """A crash on one shard must not force healthy shards to rerun."""
        cases = make_cases(6)
        marker = str(tmp_path / "crash.marker")
        with obs.capture() as collector:
            evaluation = batch_localize(
                CrashOnceLocalizer(RAPMiner(), marker),
                cases,
                k=3,
                config=BatchConfig(n_workers=3),
            )
        assert evaluation.failures() == []
        # Successful shard executions = 2 healthy + 1 retry (the crashed
        # attempt's worker snapshot dies with the exception).  More would
        # mean a healthy shard was rerun because of the crash.
        shards = collector.metrics.value("parallel_shards_total")
        requeues = collector.metrics.value("resilience_shard_requeues_total")
        assert requeues == 1.0
        assert shards == 3.0
