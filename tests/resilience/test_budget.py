"""Budget mechanics and the deadline == max_layer determinism contract.

The central promise: a search that runs out of budget at a layer
boundary returns exactly the candidates an explicit ``max_layer`` cap at
the last completed layer would — across the serial path, the vectorized
batch kernel, and the process pool.
"""

import pickle

import pytest

from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema, schema_from_sizes
from repro.parallel import BatchConfig, batch_localize
from repro.resilience import Budget, StepClock
from tests.conftest import make_labelled_dataset


class TestStepClock:
    def test_advances_per_reading(self):
        clock = StepClock(step=2.0)
        assert clock() == 0.0
        assert clock() == 2.0
        assert clock() == 4.0

    def test_custom_start(self):
        assert StepClock(step=1.0, start=5.0)() == 5.0

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            StepClock(step=-1.0)

    def test_picklable(self):
        clock = StepClock(step=1.0)
        clock()
        clone = pickle.loads(pickle.dumps(clock))
        assert clone() == clock()  # same state, same next reading


class TestBudget:
    def test_unlimited_never_expires(self):
        budget = Budget(None, clock=StepClock(step=100.0))
        assert not budget.expired()
        assert budget.remaining() == float("inf")
        assert budget.fraction_remaining() == 1.0

    def test_expires_after_total(self):
        budget = Budget(2.5, clock=StepClock(step=1.0))
        assert not budget.expired()  # elapsed 1.0
        assert not budget.expired()  # elapsed 2.0
        assert budget.expired()  # elapsed 3.0

    def test_remaining_floors_at_zero(self):
        budget = Budget(1.0, clock=StepClock(step=5.0))
        assert budget.remaining() == 0.0
        assert budget.fraction_remaining() == 0.0

    def test_from_ms_none_passthrough(self):
        assert Budget.from_ms(None) is None
        budget = Budget.from_ms(50.0, clock=StepClock(step=0.0))
        assert budget.total == pytest.approx(0.05)

    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            Budget(0.0)
        with pytest.raises(ValueError):
            Budget.from_ms(-5.0)

    def test_config_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            RAPMinerConfig(deadline_ms=0.0)


def deep_config(**overrides):
    """Full-depth search: no early stop, no stage-1 deletion."""
    return RAPMinerConfig(
        early_stop=False, enable_attribute_deletion=False, **overrides
    )


@pytest.fixture
def deep_datasets(four_attr_schema):
    """Two shared-layout cases with candidates on layers 1 and 3."""
    return [
        make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(e0_1, e1_1, e2_0, *)"], seed=1
        ),
        make_labelled_dataset(
            four_attr_schema, ["(e0_2, *, *, *)", "(e0_3, e1_0, e2_1, *)"], seed=2
        ),
    ]


def candidate_keys(result):
    return [(c.combination, c.confidence, c.support) for c in result.candidates]


class TestDeadlineEqualsLayerCap:
    """StepClock(step=1) + 2.5 s budget expires at the third layer check,
    so exactly two BFS layers complete — the ``max_layer=2`` prefix."""

    def test_serial_partial_equals_explicit_cap(self, deep_datasets):
        dataset = deep_datasets[0]
        partial = RAPMiner(deep_config()).run(
            dataset, budget=Budget(2.5, clock=StepClock(step=1.0))
        )
        assert partial.stats.stop_reason == "deadline"
        layer = partial.stats.deepest_layer_visited
        assert layer == 2
        capped = RAPMiner(deep_config(max_layer=layer)).run(dataset)
        assert candidate_keys(partial) == candidate_keys(capped)
        # The deadline genuinely truncated: the full run finds more.
        full = RAPMiner(deep_config()).run(dataset)
        assert len(full.candidates) > len(partial.candidates)

    def test_vectorized_batch_partial_equals_explicit_cap(self, deep_datasets):
        partial = RAPMiner(deep_config()).run_batch(
            deep_datasets, budget=Budget(2.5, clock=StepClock(step=1.0))
        )
        capped = RAPMiner(deep_config(max_layer=2)).run_batch(deep_datasets)
        for got, want in zip(partial, capped):
            assert got.stats.stop_reason == "deadline"
            assert got.stats.deepest_layer_visited == 2
            assert candidate_keys(got) == candidate_keys(want)

    def test_pooled_partial_equals_explicit_cap(self):
        cases = generate_rapmd(
            cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=4, n_days=2, seed=9)
        )
        deadline_method = RAPMiner(
            deep_config(deadline_ms=2500.0, deadline_clock=StepClock(step=1.0))
        )
        capped_method = RAPMiner(deep_config(max_layer=2))
        pooled = batch_localize(
            deadline_method, cases, k=3, config=BatchConfig(n_workers=2)
        )
        capped = batch_localize(
            capped_method, cases, k=3, config=BatchConfig(n_workers=2)
        )
        serial_capped = batch_localize(capped_method, cases, k=3)
        assert [r.predicted for r in pooled.results] == [
            r.predicted for r in capped.results
        ]
        assert [r.predicted for r in pooled.results] == [
            r.predicted for r in serial_capped.results
        ]

    def test_drained_budget_returns_empty_but_valid(self, deep_datasets):
        # Expired before the first layer: no candidates, still well-formed.
        result = RAPMiner(deep_config()).run(
            deep_datasets[0], budget=Budget(0.5, clock=StepClock(step=1.0))
        )
        assert result.stats.stop_reason == "deadline"
        assert result.stats.deepest_layer_visited == 0
        assert result.candidates == []

    def test_no_budget_reaches_full_depth(self, deep_datasets):
        result = RAPMiner(deep_config()).run(deep_datasets[0])
        assert result.stats.stop_reason == "lattice_exhausted"
        assert result.stats.deepest_layer_visited == 4


class TestDeadlineTelemetry:
    def test_serial_and_stacked_paths_counted(self, deep_datasets):
        from repro import obs

        with obs.capture() as collector:
            RAPMiner(deep_config()).run(
                deep_datasets[0], budget=Budget(2.5, clock=StepClock(step=1.0))
            )
            RAPMiner(deep_config()).run_batch(
                deep_datasets, budget=Budget(2.5, clock=StepClock(step=1.0))
            )
        metrics = collector.metrics
        assert metrics.value(
            "resilience_deadline_exceeded_total", {"path": "serial"}
        ) == 1.0
        assert metrics.value(
            "resilience_deadline_exceeded_total", {"path": "stacked"}
        ) == 2.0


class TestHugeCaseUnderTightDeadline:
    def test_10k_leaf_case_returns_within_structure(self):
        # Acceptance shape: a 10k-leaf case under a 50 ms deadline must
        # return a structurally valid (possibly partial) result.
        schema = schema_from_sizes([10, 10, 10, 10])
        dataset = make_labelled_dataset(schema, ["(e0_0, *, *, *)"])
        result = RAPMiner(RAPMinerConfig(deadline_ms=50.0)).run(dataset, k=5)
        assert result.stats.stop_reason in (
            "deadline",
            "coverage_early_stop",
            "lattice_exhausted",
        )
        assert isinstance(result.patterns, list)
