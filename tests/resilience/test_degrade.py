"""The graceful-degradation ladder: decisions and miner integration."""

import pytest

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.resilience import (
    TIERS,
    Budget,
    DegradationDecision,
    DegradationPolicy,
    StepClock,
)
from tests.conftest import make_labelled_dataset


def drained_budget():
    """fraction_remaining() == 0.0 on every reading."""
    return Budget(1.0, clock=StepClock(step=100.0))


def fresh_budget():
    """fraction_remaining() ~ 1.0 on every reading."""
    return Budget(1000.0, clock=StepClock(step=0.001))


def half_budget():
    # construction reads 0, every later reading ~600 of 1000 elapsed.
    return Budget(1000.0, clock=StepClock(step=600.0))


class TestDecisions:
    def test_tiers_catalogued(self):
        assert TIERS == ("delta", "full", "vectorized", "serial", "layer_capped")

    def test_delta_healthy_stays_on_top_rung(self):
        decision = DegradationPolicy().decide_delta(100, fresh_budget())
        assert decision == DegradationDecision("delta")
        assert not decision.degraded

    def test_delta_no_budget_is_delta(self):
        assert DegradationPolicy().decide_delta(100, None).tier == "delta"

    def test_delta_half_budget_steps_to_cold_full(self):
        decision = DegradationPolicy(budget_fraction=0.5).decide_delta(
            100, half_budget()
        )
        assert decision.tier == "full"
        assert decision.reason == "budget"

    def test_delta_drained_budget_caps(self):
        decision = DegradationPolicy().decide_delta(100, drained_budget())
        assert decision.tier == "layer_capped"
        assert decision.reason == "budget"

    def test_delta_leaf_limit_caps(self):
        decision = DegradationPolicy(leaf_limit=10).decide_delta(11, None)
        assert decision.tier == "layer_capped"
        assert decision.reason == "leaf_count"

    def test_serial_full_speed_when_healthy(self):
        decision = DegradationPolicy().decide_serial(100, fresh_budget())
        assert decision == DegradationDecision("full")
        assert not decision.degraded

    def test_serial_no_budget_is_full_speed(self):
        assert DegradationPolicy().decide_serial(100, None).tier == "full"

    def test_serial_leaf_limit_caps(self):
        policy = DegradationPolicy(leaf_limit=10, capped_layer=1)
        decision = policy.decide_serial(11, None)
        assert decision.tier == "layer_capped"
        assert decision.max_layer == 1
        assert decision.reason == "leaf_count"
        assert decision.degraded

    def test_serial_drained_budget_caps(self):
        decision = DegradationPolicy(capped_layer=2).decide_serial(
            100, drained_budget()
        )
        assert decision.tier == "layer_capped"
        assert decision.reason == "budget"

    def test_batch_healthy_is_vectorized(self):
        decision = DegradationPolicy().decide_batch(4, 100, fresh_budget())
        assert decision.tier == "vectorized"
        assert not decision.degraded

    def test_batch_half_budget_steps_to_serial(self):
        decision = DegradationPolicy(budget_fraction=0.5).decide_batch(
            4, 100, half_budget()
        )
        assert decision.tier == "serial"
        assert decision.reason == "budget"

    def test_batch_drained_budget_caps(self):
        decision = DegradationPolicy().decide_batch(4, 100, drained_budget())
        assert decision.tier == "layer_capped"
        assert decision.reason == "budget"

    def test_batch_stacked_volume_steps_to_serial(self):
        policy = DegradationPolicy(stacked_element_limit=100)
        decision = policy.decide_batch(10, 50, None)
        assert decision.tier == "serial"
        assert decision.reason == "leaf_count"

    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(budget_fraction=0.2, critical_fraction=0.5)
        with pytest.raises(ValueError):
            DegradationPolicy(leaf_limit=0)
        with pytest.raises(ValueError):
            DegradationPolicy(capped_layer=0)


@pytest.fixture
def datasets(four_attr_schema):
    return [
        make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)"], seed=1),
        make_labelled_dataset(four_attr_schema, ["(e0_1, e1_1, *, *)"], seed=2),
    ]


class TestMinerIntegration:
    def test_layer_cap_tier_equals_explicit_max_layer(self, datasets):
        policy = DegradationPolicy(leaf_limit=10, capped_layer=1)
        capped = RAPMiner(RAPMinerConfig(max_layer=1)).run(datasets[0])
        degraded = RAPMiner().run(datasets[0], degradation=policy)
        assert degraded.stats.degradation_tier == "layer_capped"
        assert [c.combination for c in degraded.candidates] == [
            c.combination for c in capped.candidates
        ]

    def test_no_policy_leaves_tier_unset(self, datasets):
        result = RAPMiner().run(datasets[0])
        assert result.stats.degradation_tier is None

    def test_healthy_batch_records_vectorized_tier(self, datasets):
        results = RAPMiner().run_batch(datasets, degradation=DegradationPolicy())
        assert [r.stats.degradation_tier for r in results] == [
            "vectorized",
            "vectorized",
        ]

    def test_serial_fallback_is_bit_identical(self, datasets):
        policy = DegradationPolicy(stacked_element_limit=1)
        vectorized = RAPMiner().run_batch(datasets)
        degraded = RAPMiner().run_batch(datasets, degradation=policy)
        assert [r.stats.degradation_tier for r in degraded] == ["serial", "serial"]
        for got, want in zip(degraded, vectorized):
            assert [c.combination for c in got.candidates] == [
                c.combination for c in want.candidates
            ]

    def test_degrade_decisions_counted(self, datasets):
        with obs.capture() as collector:
            RAPMiner().run_batch(
                datasets, degradation=DegradationPolicy(stacked_element_limit=1)
            )
        assert collector.metrics.value(
            "resilience_degrade_total", {"tier": "serial", "reason": "leaf_count"}
        ) == 1.0

    def test_config_carries_policy(self, datasets):
        miner = RAPMiner(
            RAPMinerConfig(degradation=DegradationPolicy(leaf_limit=10))
        )
        result = miner.run(datasets[0])
        assert result.stats.degradation_tier == "layer_capped"
