"""Sparse leaf tables: 15% of CDN leaves carry no traffic (§V-A sparsity).

The paper stresses that real leaf KPIs are sparse; every component must
behave when the leaf table is a strict subset of the cross product —
supports shrink, some combinations disappear entirely, and confidence is
defined over *present* rows only (``support_count_D`` semantics).
"""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.config import RAPMinerConfig
from repro.core.cuboid import Cuboid
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import schema_from_sizes
from repro.experiments.presets import all_methods


@pytest.fixture
def sparse_background():
    """A (6,5,4,4) table with 40% of leaves missing."""
    schema = schema_from_sizes([6, 5, 4, 4])
    rng = np.random.default_rng(151)
    full = FineGrainedDataset.full(
        schema, rng.lognormal(3.0, 1.0, schema.n_leaves), np.ones(schema.n_leaves)
    )
    keep = rng.random(schema.n_leaves) >= 0.4
    return FineGrainedDataset(
        schema, full.codes[keep], full.v[keep], full.v[keep].copy()
    )


class TestSparseBasics:
    def test_strictly_fewer_rows(self, sparse_background):
        assert sparse_background.n_rows < sparse_background.schema.n_leaves

    def test_absent_combinations_have_zero_support(self, sparse_background):
        """Some leaf combination must be gone; its support is 0 and its
        confidence is defined as 0 rather than raising."""
        schema = sparse_background.schema
        present = {tuple(row) for row in sparse_background.codes.tolist()}
        missing = None
        for codes in np.ndindex(*schema.sizes):
            if codes not in present:
                missing = codes
                break
        assert missing is not None
        combination = AttributeCombination(
            [schema.decode(i, c) for i, c in enumerate(missing)]
        )
        assert sparse_background.support_count(combination) == 0
        assert sparse_background.confidence(combination) == 0.0

    def test_aggregate_covers_present_rows_exactly(self, sparse_background):
        for indices in ([0], [1, 2], [0, 1, 2, 3]):
            aggregate = sparse_background.aggregate(Cuboid(indices))
            assert aggregate.support.sum() == sparse_background.n_rows


class TestSparseLocalization:
    def test_rapminer_recovers_raps_on_sparse_table(self, sparse_background):
        rng = np.random.default_rng(151)
        raps = sample_raps(sparse_background, 2, rng, min_support=4)
        labelled, __ = inject_failures(sparse_background, raps, rng)
        config = RAPMinerConfig(enable_attribute_deletion=False)
        assert set(RAPMiner(config).localize(labelled, k=2)) == set(raps)

    def test_confidence_uses_present_rows_only(self, sparse_background):
        """A RAP whose absent leaves would dilute confidence in a dense
        table must still reach confidence 1.0 over the present rows."""
        rng = np.random.default_rng(152)
        raps = sample_raps(sparse_background, 1, rng, min_support=4)
        labelled, __ = inject_failures(sparse_background, raps, rng)
        assert labelled.confidence(raps[0]) == pytest.approx(1.0)

    def test_every_method_runs_on_sparse_tables(self, sparse_background):
        rng = np.random.default_rng(153)
        raps = sample_raps(sparse_background, 1, rng, dimensions=[1], min_support=10)
        labelled, __ = inject_failures(sparse_background, raps, rng, per_rap_dev=[0.5])
        for method in all_methods():
            patterns = method.localize(labelled, k=2)
            assert isinstance(patterns, list), method.name

    def test_search_stats_reflect_occupied_combinations(self, sparse_background):
        rng = np.random.default_rng(154)
        raps = sample_raps(sparse_background, 1, rng, min_support=4)
        labelled, __ = inject_failures(sparse_background, raps, rng)
        result = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False, early_stop=False)).run(
            labelled
        )
        # The leaf cuboid alone contributes n_rows combinations; a dense
        # lattice would exceed that by the schema's full cross product.
        assert result.stats.n_combinations_evaluated >= labelled.n_rows
