"""Paper-shape assertions: the qualitative claims of §V must hold at small scale.

These tests regenerate (miniature versions of) the paper's comparisons and
assert the *relationships* the paper reports — who wins, where methods
break down — rather than absolute numbers.  They are the automated check
behind EXPERIMENTS.md.
"""

import pytest

from repro.baselines import Adtributor, AssociationRuleLocalizer, Squeeze
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.experiments.figures import (
    figure8a,
    figure8b,
    figure10a,
    figure10b,
    run_rapmd_comparison,
    run_squeeze_comparison,
)
from repro.experiments.presets import fast_preset, paper_methods
from repro.experiments.tables import table6


@pytest.fixture(scope="module")
def preset():
    return fast_preset(seed=1)


@pytest.fixture(scope="module")
def squeeze_evals(preset):
    return run_squeeze_comparison(preset.squeeze_cases())


@pytest.fixture(scope="module")
def rapmd_cases(preset):
    return preset.rapmd_cases()


@pytest.fixture(scope="module")
def rapmd_evals(rapmd_cases):
    return run_rapmd_comparison(rapmd_cases)


class TestFig8aShapes:
    def test_rapminer_strong_everywhere(self, squeeze_evals):
        f1 = figure8a(squeeze_evals)["RAPMiner"]
        assert all(value >= 0.8 for value in f1.values()), f1

    def test_adtributor_good_only_on_1d_groups(self, squeeze_evals):
        f1 = figure8a(squeeze_evals)["Adtributor"]
        one_dim = [f1[(1, r)] for r in (1, 2, 3)]
        multi_dim = [f1[(d, r)] for d in (2, 3) for r in (1, 2, 3)]
        assert min(one_dim) > max(multi_dim)
        assert all(value < 0.3 for value in multi_dim)

    def test_top_three_methods_comparable(self, squeeze_evals):
        """RAPMiner, Squeeze, FP-growth are comparable on Squeeze-B0."""
        f1 = figure8a(squeeze_evals)
        for name in ("RAPMiner", "Squeeze", "FP-growth"):
            mean = sum(f1[name].values()) / len(f1[name])
            assert mean > 0.75, (name, f1[name])

    def test_idice_never_the_best_overall(self, squeeze_evals):
        f1 = figure8a(squeeze_evals)
        idice_mean = sum(f1["iDice"].values()) / len(f1["iDice"])
        rapminer_mean = sum(f1["RAPMiner"].values()) / len(f1["RAPMiner"])
        assert idice_mean < rapminer_mean


class TestFig8bShapes:
    def test_rapminer_best_rc_at_k(self, rapmd_evals):
        rc = figure8b(rapmd_evals)
        for k in (3, 4, 5):
            best = max(rc, key=lambda name: rc[name][k])
            assert best == "RAPMiner", (k, {n: rc[n][k] for n in rc})

    def test_squeeze_degrades_on_rapmd(self, rapmd_evals):
        """Its assumptions are violated by Randomness 2."""
        rc = figure8b(rapmd_evals)
        assert rc["Squeeze"][3] < 0.5 * rc["RAPMiner"][3]

    def test_adtributor_about_one_third(self, rapmd_evals):
        """Only the 1-D share of RAPMD's RAPs is reachable (paper: ~33%)."""
        rc = figure8b(rapmd_evals)
        assert 0.15 <= rc["Adtributor"][3] <= 0.55

    def test_fp_growth_is_runner_up_tier(self, rapmd_evals):
        rc = figure8b(rapmd_evals)
        assert rc["FP-growth"][3] > rc["Squeeze"][3]
        assert rc["FP-growth"][3] > rc["Adtributor"][3]


class TestFig9Shapes:
    def test_rapminer_fast_on_low_dim_groups(self, squeeze_evals):
        """Sub-second localization, and quicker in 1-D groups than 3-D."""
        from repro.experiments.figures import figure9a

        seconds = figure9a(squeeze_evals)["RAPMiner"]
        assert all(value < 1.0 for value in seconds.values())

    def test_rapminer_quick_on_rapmd(self, rapmd_evals):
        from repro.experiments.figures import figure9b

        seconds = figure9b(rapmd_evals)
        assert seconds["RAPMiner"] < 1.0


class TestFig10Shapes:
    def test_tcp_sensitivity_flat_or_declining(self, rapmd_cases):
        curve = figure10a(rapmd_cases, t_cp_values=(0.01, 0.05, 0.10))
        values = [curve[t] for t in sorted(curve)]
        assert max(values) - min(values) < 0.35  # stable plateau
        assert values[-1] <= values[0] + 0.05  # no improvement with larger t_CP

    def test_tconf_sensitivity_stable(self, rapmd_cases):
        curve = figure10b(rapmd_cases, t_conf_values=(0.55, 0.75, 0.95))
        values = [curve[t] for t in sorted(curve)]
        assert max(values) - min(values) < 0.35


class TestTable6Shape:
    def test_deletion_trades_effectiveness_for_efficiency(self, rapmd_cases):
        """Assert the deterministic halves of the trade-off: deletion never
        improves recall and strictly shrinks the searched lattice.  (Wall
        time at this tiny scale is too noisy to assert on; the paper-scale
        run in EXPERIMENTS.md shows the 37.7% speedup.)"""
        result = table6(rapmd_cases)
        assert result.rc3_with_deletion <= result.rc3_without_deletion
        assert result.seconds_with_deletion > 0.0
        assert result.seconds_without_deletion > 0.0

        with_deletion = RAPMiner(RAPMinerConfig(enable_attribute_deletion=True))
        without_deletion = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        visited_with = visited_without = 0
        deleted_anything = False
        for case in rapmd_cases:
            run_a = with_deletion.run(case.dataset, k=3)
            run_b = without_deletion.run(case.dataset, k=3)
            visited_with += run_a.stats.n_cuboids_visited
            visited_without += run_b.stats.n_cuboids_visited
            if run_a.deletion and run_a.deletion.deleted_indices:
                deleted_anything = True
        assert deleted_anything
        assert visited_with < visited_without
