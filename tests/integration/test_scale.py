"""Scale tests: the full Table I CDN schema (10 560 leaves), end to end.

These pin the performance envelope that makes RAPMiner deployable at the
paper's scale — per-minute localization on commodity hardware — and check
correctness does not silently degrade with size.
"""

import time

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.cuboid import Cuboid, enumerate_cuboids
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema


@pytest.fixture(scope="module")
def full_scale_case():
    schema = cdn_schema()  # 33 x 4 x 4 x 20
    simulator = CDNSimulator(schema, CDNSimulatorConfig(seed=101))
    background = simulator.snapshot(720).to_dataset()
    rng = np.random.default_rng(101)
    raps = sample_raps(background, 3, rng, min_support=8)
    labelled, __ = inject_failures(background, raps, rng)
    return labelled, raps


class TestFullScale:
    def test_leaf_population(self, full_scale_case):
        labelled, __ = full_scale_case
        assert 8000 < labelled.n_rows <= 10560  # 15% inactive fraction

    def test_localization_correct_at_scale(self, full_scale_case):
        labelled, raps = full_scale_case
        config = RAPMinerConfig(enable_attribute_deletion=False)
        predicted = RAPMiner(config).localize(labelled, k=len(raps))
        assert set(predicted) == set(raps)

    def test_localization_under_100ms(self, full_scale_case):
        """The paper's per-minute collection interval leaves huge headroom."""
        labelled, __ = full_scale_case
        miner = RAPMiner()
        miner.localize(labelled, k=3)  # warm any lazy state
        start = time.perf_counter()
        miner.localize(labelled, k=3)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.1, f"localization took {elapsed:.3f}s"

    def test_full_lattice_aggregation_consistent(self, full_scale_case):
        """Every cuboid's aggregate conserves counts and sums at scale."""
        labelled, __ = full_scale_case
        for cuboid in enumerate_cuboids(4):
            aggregate = labelled.aggregate(cuboid)
            assert aggregate.support.sum() == labelled.n_rows
            assert aggregate.anomalous_support.sum() == labelled.n_anomalous
            assert aggregate.v_sum.sum() == pytest.approx(labelled.v.sum(), rel=1e-9)

    def test_deep_cuboid_sizes(self, full_scale_case):
        labelled, __ = full_scale_case
        leaf_aggregate = labelled.aggregate(Cuboid([0, 1, 2, 3]))
        assert len(leaf_aggregate) == labelled.n_rows  # every leaf distinct

    def test_stats_report_search_effort(self, full_scale_case):
        labelled, __ = full_scale_case
        result = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False)).run(labelled)
        assert result.stats.n_combinations_evaluated > 0
        assert result.stats.n_cuboids_visited <= 15
