"""Combined operational scenario: service + warm-start miner over a trace.

The closest thing to a staging-environment test: a two-day monitored
trace with a multi-interval regional outage and a later site failure,
driven through the full stack — seasonal forecasting, aggregate alarm,
leaf detection, warm-start localization — and scored with the temporal
evaluation harness.
"""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.config import RAPMinerConfig
from repro.core.incremental import IncrementalRAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.data.trace import Incident, IncidentSchedule
from repro.detection.detectors import DeviationThresholdDetector
from repro.detection.forecasting import SeasonalNaiveForecaster
from repro.experiments.temporal import evaluate_service
from repro.service.alarm import DeviationAlarm
from repro.service.pipeline import LocalizationService

SAMPLE_EVERY = 30
PERIOD = 1440 // SAMPLE_EVERY


@pytest.fixture(scope="module")
def scenario():
    simulator = CDNSimulator(
        cdn_schema(8, 3, 3, 6), CDNSimulatorConfig(seed=131, noise_sigma=0.02)
    )
    codes = simulator.snapshot(0).codes
    values = simulator.snapshot(0).v
    # Pick high-volume scopes so the aggregate alarm fires.
    loc_shares = [values[codes[:, 0] == c].sum() for c in range(8)]
    site_shares = [values[codes[:, 3] == c].sum() for c in range(6)]
    location = f"L{int(np.argmax(loc_shares)) + 1}"
    site = simulator.schema.decode("website", int(np.argmax(site_shares)))

    outage = Incident(
        AttributeCombination.parse(f"({location}, *, *, *)"),
        start=6, end=12, retain_fraction=0.1,
    )
    site_failure = Incident(
        AttributeCombination.parse(f"(*, *, *, {site})"),
        start=30, end=33, retain_fraction=0.25,
    )
    schedule = IncidentSchedule([outage, site_failure])

    miner = IncrementalRAPMiner(RAPMinerConfig())
    service = LocalizationService(
        schema=simulator.schema,
        codes=codes,
        forecaster=SeasonalNaiveForecaster(period=PERIOD),
        detector=DeviationThresholdDetector(threshold=0.3),
        alarm=DeviationAlarm(threshold=0.04),
        localizer=miner,
        history_capacity=PERIOD,
        min_history=PERIOD,
    )
    warmup = np.stack(
        [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
    )
    service.warm_up(warmup)
    evaluation = evaluate_service(
        service, simulator, schedule, n_steps=PERIOD,
        sample_every=SAMPLE_EVERY, start_minute=1440,
    )
    return evaluation, miner, (outage, site_failure)


class TestOperationalScenario:
    def test_both_incidents_detected_at_onset(self, scenario):
        evaluation, __, __ = scenario
        assert evaluation.detection_rate == 1.0
        assert evaluation.mean_detection_delay == 0.0

    def test_no_false_alarms(self, scenario):
        evaluation, __, __ = scenario
        assert evaluation.false_alarm_steps == []

    def test_every_alarmed_interval_localized_exactly(self, scenario):
        evaluation, __, __ = scenario
        assert evaluation.localization_accuracy(k=3) == 1.0

    def test_alarm_raised_for_every_incident_interval(self, scenario):
        evaluation, __, (outage, site_failure) = scenario
        alarmed = set(evaluation.reports)
        for incident in (outage, site_failure):
            for step in range(incident.start, incident.end + 1):
                assert step in alarmed, step

    def test_warm_start_carried_the_long_outage(self, scenario):
        """The 7-interval outage should be one full run + fast-path hits."""
        __, miner, (outage, __) = scenario
        outage_intervals = outage.end - outage.start + 1
        assert miner.stats.fast_path_hits >= outage_intervals - 2
        assert miner.stats.full_runs < miner.stats.total

    def test_reports_carry_impact(self, scenario):
        evaluation, __, (outage, __) = scenario
        report = evaluation.reports[outage.start]
        scope = report.scopes[0]
        assert scope.pattern == outage.pattern
        assert scope.drop_fraction > 0.7
