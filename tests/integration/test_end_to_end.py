"""End-to-end pipeline tests: simulate -> forecast -> detect -> localize."""

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema
from repro.detection.detectors import DeviationThresholdDetector, label_dataset
from repro.detection.forecasting import SeasonalNaiveForecaster


class TestFullPipelineWithInjectedForecasts:
    """The paper's own evaluation pipeline: injected Dev, threshold labels."""

    @pytest.mark.parametrize("n_raps", [1, 2, 3])
    def test_rapminer_recovers_injected_raps(self, n_raps):
        sim = CDNSimulator(cdn_schema(8, 3, 3, 6), CDNSimulatorConfig(seed=100 + n_raps))
        background = sim.snapshot(720).to_dataset()
        rng = np.random.default_rng(200 + n_raps)
        raps = sample_raps(background, n_raps, rng, min_support=6)
        labelled, __ = inject_failures(background, raps, rng)
        config = RAPMinerConfig(enable_attribute_deletion=False)
        predicted = RAPMiner(config).localize(labelled, k=n_raps)
        assert set(predicted) == set(raps)

    def test_detector_reproduces_injected_labels(self):
        sim = CDNSimulator(cdn_schema(8, 3, 3, 6), CDNSimulatorConfig(seed=7))
        background = sim.snapshot(720).to_dataset()
        rng = np.random.default_rng(7)
        raps = sample_raps(background, 2, rng)
        labelled, truth = inject_failures(background, raps, rng)
        relabelled = label_dataset(
            FineGrainedDataset(
                labelled.schema, labelled.codes, labelled.v, labelled.f
            ),
            DeviationThresholdDetector(),
        )
        assert np.array_equal(relabelled.labels, truth)


class TestFullPipelineWithRealForecasts:
    """Operational pipeline: the forecast comes from a model over history,
    and an anomaly is an actual traffic drop — not an injected Dev."""

    def test_localization_from_seasonal_forecast(self):
        schema = cdn_schema(6, 2, 2, 5)
        sim = CDNSimulator(schema, CDNSimulatorConfig(seed=3, noise_sigma=0.02))
        period = 72  # sample every 20 simulated minutes over 2 days
        steps = list(range(0, 2 * 1440 + 20, 20))
        values = np.stack([sim.snapshot(s).v for s in steps[:-1]])
        target_step = steps[-1]

        # Actual values at the target step, with a real traffic drop on one
        # location: every leaf of L2 loses 60% of its volume.
        snapshot = sim.snapshot(target_step)
        dataset = snapshot.to_dataset()
        drop_mask = dataset.codes[:, 0] == 1  # L2
        v = snapshot.v.copy()
        v[drop_mask] *= 0.4

        f = SeasonalNaiveForecaster(period=period).forecast(values)
        dropped = FineGrainedDataset(schema, dataset.codes, v, f)
        labelled = label_dataset(dropped, DeviationThresholdDetector(threshold=0.3))
        predicted = RAPMiner().localize(labelled, k=1)
        assert [str(p) for p in predicted] == ["(L2, *, *, *)"]


class TestCrossMethodAgreement:
    def test_all_methods_agree_on_an_easy_case(self):
        """A clean 1-D failure is unambiguous: every method must find it."""
        from repro.experiments.presets import all_methods

        sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=17))
        background = sim.snapshot(300).to_dataset()
        rng = np.random.default_rng(17)
        raps = sample_raps(background, 1, rng, dimensions=[1], min_support=20)
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.6])
        for method in all_methods():
            assert method.localize(labelled, k=1) == list(raps), method.name
