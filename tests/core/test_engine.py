"""Tests for the shared aggregation engine: equivalence, roll-ups, parallelism."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid, enumerate_cuboids
from repro.core.engine import (
    AggregationEngine,
    CandidateIndex,
    NaiveAggregationEngine,
    engine_for,
)
from repro.core.search import layerwise_topdown_search
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes

from tests.conftest import make_labelled_dataset


def _random_dataset(sizes, seed, sparse=False):
    rng = np.random.default_rng(seed)
    schema = schema_from_sizes(list(sizes))
    n = schema.n_leaves
    if sparse:
        # Duplicate and missing leaf rows: the engine must not assume the
        # cross-product table.
        rows = rng.integers(0, n, size=max(1, n // 2))
        grids = np.meshgrid(*[np.arange(s) for s in schema.sizes], indexing="ij")
        full_codes = np.stack([g.reshape(-1) for g in grids], axis=1)
        codes = full_codes[rows]
        m = codes.shape[0]
        return FineGrainedDataset(
            schema, codes, rng.uniform(1, 10, m), rng.uniform(1, 10, m), rng.random(m) < 0.4
        )
    return FineGrainedDataset.full(
        schema, rng.uniform(1, 10, n), rng.uniform(1, 10, n), rng.random(n) < 0.4
    )


def _assert_aggregates_equal(actual, expected):
    assert actual.cuboid == expected.cuboid
    np.testing.assert_array_equal(actual.codes, expected.codes)
    np.testing.assert_array_equal(actual.support, expected.support)
    np.testing.assert_array_equal(actual.anomalous_support, expected.anomalous_support)
    np.testing.assert_allclose(actual.v_sum, expected.v_sum)
    np.testing.assert_allclose(actual.f_sum, expected.f_sum)


class TestAggregateEquivalence:
    @pytest.mark.parametrize("sparse", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_naive_on_every_cuboid(self, seed, sparse):
        dataset = _random_dataset((3, 2, 4), seed, sparse=sparse)
        engine = AggregationEngine(dataset)
        for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
            _assert_aggregates_equal(engine.aggregate(cuboid), dataset.aggregate(cuboid))

    @given(
        sizes=st.lists(st.integers(2, 3), min_size=2, max_size=4),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_naive_property(self, sizes, seed):
        dataset = _random_dataset(tuple(sizes), seed)
        engine = AggregationEngine(dataset)
        engine.prepare(range(dataset.schema.n_attributes))
        for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
            _assert_aggregates_equal(engine.aggregate(cuboid), dataset.aggregate(cuboid))

    def test_aggregate_is_cached(self, fig7_dataset):
        engine = AggregationEngine(fig7_dataset)
        first = engine.aggregate(Cuboid([0, 1]))
        assert engine.aggregate(Cuboid([0, 1])) is first

    def test_aggregate_with_labels_matches_relabelled_naive(self):
        dataset = _random_dataset((3, 3, 2), 7)
        engine = AggregationEngine(dataset)
        rng = np.random.default_rng(8)
        other_labels = rng.random(dataset.n_rows) < 0.3
        relabelled = dataset.with_labels(other_labels)
        for cuboid in enumerate_cuboids(dataset.schema.n_attributes):
            _assert_aggregates_equal(
                engine.aggregate_with_labels(cuboid, other_labels),
                relabelled.aggregate(cuboid),
            )


class TestRollUp:
    def test_rollup_agrees_with_leaf_aggregation(self):
        """Sub-cuboid aggregates rolled up from the prepared base match the
        direct leaf-level group-by exactly on the integer counts."""
        rng = np.random.default_rng(11)
        schema = schema_from_sizes([4, 3, 3])
        # Duplicated leaf rows: the base groups strictly fewer rows than
        # the table, so prepare() materializes it and roll-ups fire.
        grids = np.meshgrid(*[np.arange(s) for s in schema.sizes], indexing="ij")
        full_codes = np.stack([g.reshape(-1) for g in grids], axis=1)
        codes = full_codes[rng.integers(0, schema.n_leaves, size=3 * schema.n_leaves)]
        m = codes.shape[0]
        dataset = FineGrainedDataset(
            schema, codes, rng.uniform(1, 10, m), rng.uniform(1, 10, m), rng.random(m) < 0.4
        )
        engine = AggregationEngine(dataset)
        # Disable the small-lattice prefetch so sub-cuboids must roll up.
        engine._MAX_PREFETCH_CUBOIDS = 0
        base = engine.prepare([0, 1, 2])
        assert base is not None and len(base) < dataset.n_rows
        for layer in (1, 2):
            for subset in itertools.combinations(range(3), layer):
                cuboid = Cuboid(subset)
                _assert_aggregates_equal(engine.aggregate(cuboid), dataset.aggregate(cuboid))

    def test_prepare_skips_base_as_wide_as_table(self):
        """For a full cross-product table the base cannot beat a leaf pass,
        so prepare() declines to materialize it."""
        dataset = _random_dataset((4, 3, 3), 11)
        assert AggregationEngine(dataset).prepare([0, 1, 2]) is None

    def test_rollup_from_partial_base(self):
        """A base over a strict attribute subset serves its own sub-cuboids."""
        dataset = _random_dataset((3, 4, 2, 3), 13)
        engine = AggregationEngine(dataset)
        engine._MAX_PREFETCH_CUBOIDS = 0
        engine.prepare([0, 2, 3])
        for subset in [(0,), (2,), (3,), (0, 2), (0, 3), (2, 3)]:
            _assert_aggregates_equal(
                engine.aggregate(Cuboid(subset)), dataset.aggregate(Cuboid(subset))
            )

    def test_prepare_empty_is_noop(self, fig7_dataset):
        assert AggregationEngine(fig7_dataset).prepare([]) is None

    def test_prepare_prefetches_small_lattice(self):
        """A small attribute set is aggregated whole in one batched pass."""
        dataset = _random_dataset((3, 4, 2), 17, sparse=True)
        engine = AggregationEngine(dataset)
        engine.prepare([0, 1, 2])
        lattice = [
            subset
            for layer in (1, 2, 3)
            for subset in itertools.combinations(range(3), layer)
        ]
        assert all(subset in engine._aggregates for subset in lattice)
        for subset in lattice:
            _assert_aggregates_equal(
                engine.aggregate(Cuboid(subset)), dataset.aggregate(Cuboid(subset))
            )


class TestParallelism:
    def test_n_jobs_deterministic(self):
        dataset = _random_dataset((3, 3, 2, 2), 21)
        cuboids = [Cuboid(s) for s in itertools.combinations(range(4), 2)]
        serial = list(AggregationEngine(dataset, n_jobs=1).layer_aggregates(cuboids))
        parallel = list(AggregationEngine(dataset, n_jobs=4).layer_aggregates(cuboids))
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            _assert_aggregates_equal(a, b)

    def test_search_identical_under_n_jobs(self, fig7_dataset):
        indices = range(fig7_dataset.schema.n_attributes)
        base = layerwise_topdown_search(
            fig7_dataset, indices, engine=AggregationEngine(fig7_dataset, n_jobs=1)
        )
        threaded = layerwise_topdown_search(
            fig7_dataset, indices, engine=AggregationEngine(fig7_dataset), n_jobs=4
        )
        assert base.candidates == threaded.candidates

    def test_invalid_n_jobs_rejected(self, fig7_dataset):
        with pytest.raises(ValueError):
            AggregationEngine(fig7_dataset, n_jobs=0)


class TestInvertedIndex:
    def test_rows_of_matches_mask(self):
        dataset = _random_dataset((3, 2, 3), 5, sparse=True)
        engine = AggregationEngine(dataset)
        schema = dataset.schema
        combos = [
            AttributeCombination([schema.decode(0, 1), None, None]),
            AttributeCombination([None, schema.decode(1, 0), schema.decode(2, 2)]),
            AttributeCombination([None, None, None]),
        ]
        for combination in combos:
            expected = np.flatnonzero(dataset.mask_of(combination))
            np.testing.assert_array_equal(engine.rows_of(combination), expected)
            assert engine.support_count(combination) == dataset.support_count(combination)
            assert engine.anomalous_count(combination) == dataset.anomalous_support_count(
                combination
            )
            assert engine.confidence(combination) == pytest.approx(
                dataset.confidence(combination)
            )

    def test_group_rows_matches_rows_of(self):
        dataset = _random_dataset((3, 2, 3), 9, sparse=True)
        engine = AggregationEngine(dataset)
        aggregate = engine.aggregate(Cuboid([0, 2]))
        for index in range(len(aggregate)):
            np.testing.assert_array_equal(
                engine.group_rows(aggregate, index),
                engine.rows_of(aggregate.combination(index)),
            )

    def test_rows_of_empty_support(self, tiny_schema):
        dataset = FineGrainedDataset(
            tiny_schema, np.array([[0, 0]]), np.ones(1), np.ones(1)
        )
        engine = AggregationEngine(dataset)
        missing = AttributeCombination([tiny_schema.decode(0, 1), None])
        assert engine.rows_of(missing).size == 0
        assert engine.confidence(missing) == 0.0


class TestWarmClone:
    def test_clone_shares_keys_and_recomputes_labels(self):
        dataset = _random_dataset((3, 3, 2), 31)
        engine = AggregationEngine(dataset)
        engine.prepare(range(3))
        for cuboid in enumerate_cuboids(3):
            engine.aggregate(cuboid)

        rng = np.random.default_rng(32)
        fresh = FineGrainedDataset(
            dataset.schema,
            dataset.codes,
            rng.uniform(1, 10, dataset.n_rows),
            rng.uniform(1, 10, dataset.n_rows),
            rng.random(dataset.n_rows) < 0.5,
        )
        clone = engine.warm_clone(fresh)
        assert clone._keys is engine._keys
        for cuboid in enumerate_cuboids(3):
            _assert_aggregates_equal(clone.aggregate(cuboid), fresh.aggregate(cuboid))
        assert engine_for(fresh) is clone

    def test_clone_rejects_different_codes(self):
        dataset = _random_dataset((2, 2), 41)
        other = _random_dataset((2, 2), 42, sparse=True)
        with pytest.raises(ValueError):
            AggregationEngine(dataset).warm_clone(other)

    def test_warm_refresh_is_bitwise_equal_to_cold(self):
        """A warm-clone chain must reproduce cold aggregates *bitwise*.

        The batch execution layer keeps one warm engine per (worker,
        schema) and asserts batch results identical to serial runs, so the
        warm refresh may not drift from the cold leaf-level summation
        order even in the last float bit — exact array equality, not
        allclose.
        """
        rng = np.random.default_rng(51)
        previous_engine = None
        base = _random_dataset((4, 3, 3), 50)
        for __ in range(4):
            fresh = FineGrainedDataset(
                base.schema,
                base.codes,
                rng.uniform(1, 10, base.n_rows),
                rng.uniform(1, 10, base.n_rows),
                rng.random(base.n_rows) < 0.3,
            )
            if previous_engine is None:
                engine = AggregationEngine(fresh)
            else:
                engine = previous_engine.warm_clone(fresh)
            engine.prepare(range(3))
            cold = AggregationEngine(fresh)
            cold.prepare(range(3))
            for cuboid in enumerate_cuboids(3):
                warm_aggregate = engine.aggregate(cuboid)
                cold_aggregate = cold.aggregate(cuboid)
                np.testing.assert_array_equal(
                    warm_aggregate.anomalous_support, cold_aggregate.anomalous_support
                )
                np.testing.assert_array_equal(warm_aggregate.v_sum, cold_aggregate.v_sum)
                np.testing.assert_array_equal(warm_aggregate.f_sum, cold_aggregate.f_sum)
            previous_engine = engine


class TestDefaultEnginePath:
    def test_search_uses_shared_engine_by_default(self, fig7_dataset, monkeypatch):
        """Tier-1 smoke check: the default search path goes through the engine."""
        calls = []
        original = AggregationEngine.aggregate

        def counting(self, cuboid):
            calls.append(cuboid)
            return original(self, cuboid)

        monkeypatch.setattr(AggregationEngine, "aggregate", counting)
        outcome = layerwise_topdown_search(fig7_dataset, range(3))
        assert calls, "default search must aggregate through AggregationEngine"
        assert outcome.candidates

    def test_engine_for_returns_same_instance(self, fig7_dataset):
        assert engine_for(fig7_dataset) is engine_for(fig7_dataset)

    def test_naive_engine_matches_search_results(self, fig7_dataset):
        indices = range(fig7_dataset.schema.n_attributes)
        fast = layerwise_topdown_search(fig7_dataset, indices)
        naive = layerwise_topdown_search(
            fig7_dataset, indices, engine=NaiveAggregationEngine(fig7_dataset)
        )
        assert fast.candidates == naive.candidates
        assert fast.stats == naive.stats


class TestCandidateIndex:
    def test_matches_linear_ancestor_scan(self, example_schema):
        dataset = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, b2, *)"])
        aggregate = dataset.aggregate(Cuboid([0, 1, 2]))
        combos = aggregate.combinations()
        stored = [
            AttributeCombination.parse("(a1, *, *)"),
            AttributeCombination.parse("(a2, b2, *)"),
        ]
        index = CandidateIndex()
        for combination in stored:
            index.add(combination)
        assert len(index) == 2
        for combination in combos:
            expected = any(s.is_ancestor_of(combination) for s in stored)
            assert index.has_ancestor_of(combination) == expected

    def test_same_layer_never_matches(self):
        index = CandidateIndex()
        combo = AttributeCombination.parse("(a1, *, *)")
        index.add(combo)
        assert not index.has_ancestor_of(combo)
        assert not index.has_ancestor_of(AttributeCombination.parse("(a2, *, *)"))
