"""Tests for Anomaly Confidence (Criteria 2)."""

import numpy as np
import pytest

from repro.core.anomaly_confidence import anomaly_confidence, cuboid_confidences, is_anomalous
from repro.core.attribute import AttributeCombination
from repro.core.cuboid import Cuboid


class TestAnomalyConfidence:
    def test_fully_anomalous_pattern(self, example_dataset):
        assert anomaly_confidence(
            example_dataset, AttributeCombination.parse("(a1, *, *)")
        ) == pytest.approx(1.0)

    def test_fully_normal_pattern(self, example_dataset):
        assert anomaly_confidence(
            example_dataset, AttributeCombination.parse("(a2, *, *)")
        ) == pytest.approx(0.0)

    def test_mixed_pattern(self, example_dataset):
        """(*, b1, *) covers 6 leaves of which 2 (under a1) are anomalous."""
        assert anomaly_confidence(
            example_dataset, AttributeCombination.parse("(*, b1, *)")
        ) == pytest.approx(2.0 / 6.0)

    def test_total_combination_equals_anomaly_ratio(self, fig7_dataset):
        total = AttributeCombination([None, None, None])
        assert anomaly_confidence(fig7_dataset, total) == pytest.approx(
            fig7_dataset.anomaly_ratio
        )


class TestCriteria2:
    def test_above_threshold_is_anomalous(self, example_dataset):
        assert is_anomalous(example_dataset, AttributeCombination.parse("(a1, *, *)"), 0.8)

    def test_below_threshold_is_not(self, example_dataset):
        assert not is_anomalous(example_dataset, AttributeCombination.parse("(*, b1, *)"), 0.8)

    def test_strict_inequality(self, example_dataset):
        """Criteria 2 uses >, so confidence exactly at the threshold fails."""
        pattern = AttributeCombination.parse("(*, b1, *)")
        conf = anomaly_confidence(example_dataset, pattern)
        assert not is_anomalous(example_dataset, pattern, conf)

    def test_invalid_threshold(self, example_dataset):
        pattern = AttributeCombination.parse("(a1, *, *)")
        for bad in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                is_anomalous(example_dataset, pattern, bad)


class TestBulkConfidences:
    def test_matches_scalar_computation(self, fig7_dataset):
        aggregate, confidences = cuboid_confidences(fig7_dataset, Cuboid([0, 1]))
        for i in range(len(aggregate)):
            assert confidences[i] == pytest.approx(
                fig7_dataset.confidence(aggregate.combination(i))
            )

    def test_shape_matches_occupied_combinations(self, fig7_dataset):
        aggregate, confidences = cuboid_confidences(fig7_dataset, Cuboid([0]))
        assert confidences.shape == (len(aggregate),) == (3,)
