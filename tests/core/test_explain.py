"""Tests for the localization-result audit (repro.core.explain)."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.explain import explain
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


def ac(text):
    return AttributeCombination.parse(text)


class TestExplain:
    def test_perfect_result_has_full_coverage(self, fig7_dataset):
        patterns = RAPMiner().localize(fig7_dataset)
        audit = explain(fig7_dataset, patterns)
        assert audit.coverage == 1.0
        assert audit.residual_leaves == []
        assert audit.excess_normal_leaves == 0

    def test_partial_result_reports_residual(self, fig7_dataset):
        audit = explain(fig7_dataset, [ac("(a1, *, *)")])  # misses (a2,b2,*)
        assert audit.coverage < 1.0
        assert audit.covered_anomalous_leaves == 4
        assert len(audit.residual_leaves) == 2
        assert all(leaf.values[0] == "a2" for leaf in audit.residual_leaves)

    def test_empty_result_all_residual(self, fig7_dataset):
        audit = explain(fig7_dataset, [])
        assert audit.coverage == 0.0
        assert len(audit.residual_leaves) == fig7_dataset.n_anomalous

    def test_no_anomalies_is_vacuously_covered(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        audit = explain(ds, [])
        assert audit.coverage == 1.0

    def test_evidence_fields(self, example_dataset):
        audit = explain(example_dataset, [ac("(a1, *, *)")])
        evidence = audit.evidence[0]
        assert evidence.rank == 1
        assert evidence.support == 4
        assert evidence.anomalous_support == 4
        assert evidence.confidence == pytest.approx(1.0)
        assert evidence.new_anomalies_covered == 4
        assert evidence.normal_leaves_covered == 0
        assert not evidence.is_redundant

    def test_redundant_pattern_flagged(self, example_dataset):
        """A child of an already-returned RAP adds no new coverage."""
        audit = explain(example_dataset, [ac("(a1, *, *)"), ac("(a1, b1, *)")])
        assert audit.evidence[1].is_redundant

    def test_overbroad_pattern_counts_healthy_leaves(self, example_dataset):
        audit = explain(example_dataset, [ac("(*, b1, *)")])
        evidence = audit.evidence[0]
        assert evidence.normal_leaves_covered == 4  # b1 under a2/a3
        assert evidence.anomalous_support == 2

    def test_aggregated_kpi_values(self, example_dataset):
        audit = explain(example_dataset, [ac("(a1, *, *)")])
        evidence = audit.evidence[0]
        v, f = example_dataset.values_of(ac("(a1, *, *)"))
        assert evidence.actual == pytest.approx(v)
        assert evidence.forecast == pytest.approx(f)

    def test_residual_listing_bounded(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)"])
        audit = explain(ds, [], max_residual_listed=3)
        assert len(audit.residual_leaves) == 3
        assert audit.covered_anomalous_leaves == 0


class TestRender:
    def test_mentions_coverage_and_patterns(self, fig7_dataset):
        patterns = RAPMiner().localize(fig7_dataset)
        text = explain(fig7_dataset, patterns).render()
        assert "coverage: 6/6" in text
        assert "(a1, *, *)" in text

    def test_flags_in_render(self, example_dataset):
        audit = explain(example_dataset, [ac("(a1, *, *)"), ac("(a1, b1, *)")])
        assert "redundant" in audit.render()

    def test_residual_in_render(self, fig7_dataset):
        text = explain(fig7_dataset, [ac("(a1, *, *)")]).render()
        assert "unexplained anomalous leaves" in text

    def test_residual_render_truncates(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)"])
        text = explain(ds, []).render()
        assert "more)" in text
