"""Tests for the RAPMiner facade (the full Fig. 5 pipeline)."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.config import RAPMinerConfig
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


class TestPipeline:
    def test_single_rap(self, example_dataset):
        result = RAPMiner().run(example_dataset)
        assert [str(p) for p in result.patterns] == ["(a1, *, *)"]

    def test_fig7_two_raps_ranked_by_rapscore(self, fig7_dataset):
        result = RAPMiner().run(fig7_dataset)
        # Both confidence 1.0; (a1,*,*) is layer 1 so Eq. 3 ranks it first.
        assert [str(p) for p in result.patterns] == ["(a1, *, *)", "(a2, b2, *)"]

    def test_top_k_truncation(self, fig7_dataset):
        assert len(RAPMiner().run(fig7_dataset, k=1).patterns) == 1
        assert RAPMiner().run(fig7_dataset, k=1).top(1) == [
            AttributeCombination.parse("(a1, *, *)")
        ]

    def test_localize_interface(self, fig7_dataset):
        patterns = RAPMiner().localize(fig7_dataset, k=2)
        assert AttributeCombination.parse("(a1, *, *)") in patterns

    def test_no_anomalies_empty_result(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        result = RAPMiner().run(ds)
        assert result.patterns == []

    def test_deletion_diagnostics_exposed(self, example_dataset):
        result = RAPMiner().run(example_dataset)
        assert result.deletion is not None
        assert result.deletion.kept_names(example_dataset) == ("A",)
        assert set(result.deletion.cp_values) == {"A", "B", "C"}

    def test_stats_populated(self, example_dataset):
        result = RAPMiner().run(example_dataset)
        assert result.stats.n_cuboids_visited >= 1
        assert result.stats.n_candidates == 1


class TestConfigSwitches:
    def test_deletion_disabled_searches_all_attributes(self, example_dataset):
        config = RAPMinerConfig(enable_attribute_deletion=False, early_stop=False)
        result = RAPMiner(config).run(example_dataset)
        assert result.deletion is None
        assert result.stats.n_cuboids_visited == 7  # full 3-attribute lattice

    def test_deletion_enabled_shrinks_lattice(self, example_dataset):
        config = RAPMinerConfig(enable_attribute_deletion=True, early_stop=False)
        result = RAPMiner(config).run(example_dataset)
        assert result.stats.n_cuboids_visited == 1  # only attribute A survives

    def test_deletion_can_lose_low_cp_raps(self, four_attr_schema):
        """The Table VI trade-off: an aggressive t_cp drops a weak RAP."""
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(*, *, e2_0, e3_1)"]
        )
        aggressive = RAPMiner(RAPMinerConfig(t_cp=0.5)).run(ds)
        lenient = RAPMiner(RAPMinerConfig(enable_attribute_deletion=False)).run(ds)
        assert len(aggressive.patterns) <= len(lenient.patterns)

    def test_layer_normalization_toggle(self, example_schema):
        """With raw-confidence ranking, a deeper higher-confidence pattern
        can outrank a shallower lower-confidence one."""
        ds = make_labelled_dataset(
            example_schema, ["(a1, b1, *)", "(a1, b2, c1)", "(a2, b2, *)"]
        )
        normalized = RAPMiner(
            RAPMinerConfig(t_conf=0.7, enable_attribute_deletion=False)
        ).run(ds)
        raw = RAPMiner(
            RAPMinerConfig(
                t_conf=0.7,
                enable_attribute_deletion=False,
                layer_normalized_ranking=False,
            )
        ).run(ds)
        assert set(normalized.patterns) == set(raw.patterns)
        raw_order = [c.confidence for c in raw.candidates]
        assert raw_order == sorted(raw_order, reverse=True)

    def test_max_layer_respected(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_0, e2_0, *)"])
        result = RAPMiner(
            RAPMinerConfig(max_layer=2, enable_attribute_deletion=False)
        ).run(ds)
        assert all(c.layer <= 2 for c in result.candidates)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RAPMinerConfig(t_cp=-0.1)
        with pytest.raises(ValueError):
            RAPMinerConfig(t_conf=1.5)
        with pytest.raises(ValueError):
            RAPMinerConfig(max_layer=0)


class TestGeneralizedAttributes:
    def test_works_with_two_attributes(self, tiny_schema):
        ds = make_labelled_dataset(tiny_schema, ["(e0_0, *)"])
        assert [str(p) for p in RAPMiner().localize(ds)] == ["(e0_0, *)"]

    def test_works_with_five_attributes(self):
        from repro.data.schema import schema_from_sizes

        schema = schema_from_sizes([3, 2, 2, 2, 2])
        ds = make_labelled_dataset(schema, ["(*, e1_0, *, e3_1, *)"])
        patterns = RAPMiner().localize(ds)
        assert AttributeCombination.parse("(*, e1_0, *, e3_1, *)") in patterns
