"""Tests for RAPScore (Eq. 3) and candidate ranking."""

import math

import pytest

from repro.core.attribute import AttributeCombination
from repro.core.scoring import RAPCandidate, rank_candidates, rap_score


def candidate(text, confidence, layer, support=10, anomalous=None):
    return RAPCandidate(
        combination=AttributeCombination.parse(text),
        confidence=confidence,
        layer=layer,
        support=support,
        anomalous_support=anomalous if anomalous is not None else support,
    )


class TestRapScore:
    def test_eq3_value(self):
        assert rap_score(0.9, 4) == pytest.approx(0.9 / 2.0)

    def test_layer_one_is_identity(self):
        assert rap_score(0.7, 1) == pytest.approx(0.7)

    def test_layer_penalty_is_sqrt(self):
        assert rap_score(1.0, 2) == pytest.approx(1.0 / math.sqrt(2.0))

    def test_invalid_layer(self):
        with pytest.raises(ValueError):
            rap_score(0.5, 0)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            rap_score(1.5, 1)
        with pytest.raises(ValueError):
            rap_score(-0.1, 1)

    def test_candidate_score_property(self):
        c = candidate("(a1, *, *)", 0.8, 1)
        assert c.score == pytest.approx(0.8)


class TestRanking:
    def test_orders_by_score_descending(self):
        low = candidate("(a1, b1, *)", 0.9, 2)  # score 0.636
        high = candidate("(a2, *, *)", 0.8, 1)  # score 0.8
        assert rank_candidates([low, high]) == [high, low]

    def test_coarser_wins_at_equal_confidence(self):
        """Eq. 3's purpose: prefer the shallower pattern at the same confidence."""
        shallow = candidate("(a1, *, *)", 1.0, 1)
        deep = candidate("(a1, b1, *)", 1.0, 2)
        assert rank_candidates([deep, shallow])[0] is shallow

    def test_top_k_truncation(self):
        cands = [candidate(f"(a{i}, *, *)", 0.5 + i * 0.1, 1) for i in range(1, 4)]
        top = rank_candidates(cands, k=2)
        assert len(top) == 2
        assert top[0].confidence == pytest.approx(0.8)

    def test_k_zero_and_none(self):
        cands = [candidate("(a1, *, *)", 0.9, 1)]
        assert rank_candidates(cands, k=0) == []
        assert len(rank_candidates(cands, k=None)) == 1

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            rank_candidates([], k=-1)

    def test_tie_break_on_support(self):
        small = candidate("(a1, *, *)", 0.9, 1, support=5)
        big = candidate("(a2, *, *)", 0.9, 1, support=50)
        assert rank_candidates([small, big])[0] is big

    def test_deterministic_final_tie_break(self):
        a = candidate("(a1, *, *)", 0.9, 1)
        b = candidate("(a2, *, *)", 0.9, 1)
        assert rank_candidates([b, a]) == rank_candidates([a, b])

    def test_empty_input(self):
        assert rank_candidates([]) == []
