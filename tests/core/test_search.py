"""Tests for Algorithm 2: AC-guided layer-by-layer top-down search."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.search import layerwise_topdown_search
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


def patterns(outcome):
    return {str(c.combination) for c in outcome.candidates}


class TestSearchCorrectness:
    def test_single_rap_found(self, example_dataset):
        outcome = layerwise_topdown_search(example_dataset, [0, 1, 2], t_conf=0.8)
        assert patterns(outcome) == {"(a1, *, *)"}

    def test_fig7_scenario_finds_both_raps(self, fig7_dataset):
        """Fig. 7: (a1,*,*) in layer 1 and (a2,b2,*) in layer 2."""
        outcome = layerwise_topdown_search(fig7_dataset, [0, 1, 2], t_conf=0.8)
        assert patterns(outcome) == {"(a1, *, *)", "(a2, b2, *)"}
        layers = {str(c.combination): c.layer for c in outcome.candidates}
        assert layers["(a1, *, *)"] == 1
        assert layers["(a2, b2, *)"] == 2

    def test_descendants_of_candidates_pruned(self, example_dataset):
        """Criteria 3: children of (a1,*,*) are anomalous but must not appear."""
        outcome = layerwise_topdown_search(
            example_dataset, [0, 1, 2], t_conf=0.8, early_stop=False
        )
        assert "(a1, b1, *)" not in patterns(outcome)
        assert "(a1, b1, c1)" not in patterns(outcome)

    def test_no_anomalies_returns_empty(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        outcome = layerwise_topdown_search(ds, [0, 1, 2], t_conf=0.8)
        assert outcome.candidates == []
        assert outcome.stats.n_cuboids_visited == 0

    def test_candidates_never_have_anomalous_parents(self, four_attr_schema):
        """Definition 1 invariant on a multi-RAP dataset."""
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(*, e1_1, e2_0, *)"]
        )
        outcome = layerwise_topdown_search(ds, [0, 1, 2, 3], t_conf=0.8, early_stop=False)
        for candidate in outcome.candidates:
            for parent in candidate.combination.parents():
                assert ds.confidence(parent) <= 0.8

    def test_candidates_cover_all_anomalies_without_early_stop(self, fig7_dataset):
        outcome = layerwise_topdown_search(fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False)
        covered = np.zeros(fig7_dataset.n_rows, dtype=bool)
        for candidate in outcome.candidates:
            covered |= fig7_dataset.mask_of(candidate.combination)
        assert covered[fig7_dataset.labels].all()

    def test_restricted_attributes_limit_search(self, fig7_dataset):
        """Searching only attribute C finds nothing (no RAP involves C)."""
        outcome = layerwise_topdown_search(fig7_dataset, [2], t_conf=0.8)
        assert outcome.candidates == []

    def test_max_layer_caps_depth(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_0, e2_0, *)"])
        outcome = layerwise_topdown_search(
            ds, [0, 1, 2, 3], t_conf=0.8, max_layer=2, early_stop=False
        )
        assert outcome.stats.deepest_layer_visited == 2
        assert all(c.layer <= 2 for c in outcome.candidates)

    def test_candidate_evidence_fields(self, example_dataset):
        outcome = layerwise_topdown_search(example_dataset, [0, 1, 2], t_conf=0.8)
        candidate = outcome.candidates[0]
        assert candidate.support == 4
        assert candidate.anomalous_support == 4
        assert candidate.confidence == pytest.approx(1.0)


class TestEarlyStop:
    def test_early_stop_triggers_when_covered(self, example_dataset):
        outcome = layerwise_topdown_search(example_dataset, [0, 1, 2], t_conf=0.8)
        assert outcome.stats.early_stopped

    def test_early_stop_reduces_visited_cuboids(self, fig7_dataset):
        eager = layerwise_topdown_search(fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=True)
        full = layerwise_topdown_search(fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False)
        assert eager.stats.n_cuboids_visited <= full.stats.n_cuboids_visited
        assert not full.stats.early_stopped

    def test_early_stop_preserves_found_raps(self, fig7_dataset):
        eager = layerwise_topdown_search(fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=True)
        assert patterns(eager) == {"(a1, *, *)", "(a2, b2, *)"}


class TestThresholdBehaviour:
    def test_high_threshold_misses_partial_anomalies(self, example_schema):
        """A combination with 75% anomalous children needs t_conf < 0.75."""
        ds = make_labelled_dataset(example_schema, ["(a1, b1, *)", "(a1, b2, c1)"])
        # (a1,*,*) has 3/4 anomalous leaves.
        strict = layerwise_topdown_search(ds, [0, 1, 2], t_conf=0.9, early_stop=False)
        loose = layerwise_topdown_search(ds, [0, 1, 2], t_conf=0.7, early_stop=False)
        assert "(a1, *, *)" not in patterns(strict)
        assert "(a1, *, *)" in patterns(loose)

    def test_invalid_threshold_rejected(self, example_dataset):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                layerwise_topdown_search(example_dataset, [0, 1, 2], t_conf=bad)

    def test_empty_attribute_set_rejected(self, example_dataset):
        with pytest.raises(ValueError):
            layerwise_topdown_search(example_dataset, [], t_conf=0.8)


class TestStats:
    def test_cuboid_count_without_early_stop(self, fig7_dataset):
        outcome = layerwise_topdown_search(
            fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False
        )
        assert outcome.stats.n_cuboids_visited == 7  # 2**3 - 1

    def test_combination_evaluations_accumulate(self, fig7_dataset):
        outcome = layerwise_topdown_search(
            fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False
        )
        # 7 + 16 + 12 combinations over the three layers (Table V counts).
        assert outcome.stats.n_combinations_evaluated == 35

    def test_n_candidates_recorded(self, fig7_dataset):
        outcome = layerwise_topdown_search(
            fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False
        )
        assert outcome.stats.n_candidates == len(outcome.candidates) == 2
