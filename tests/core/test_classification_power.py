"""Tests for Classification Power and Algorithm 1 (Fig. 6, Criteria 1)."""

import math

import numpy as np
import pytest

from repro.core.classification_power import (
    all_classification_powers,
    binary_entropy,
    classification_power,
    delete_redundant_attributes,
)
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(math.log(2.0))

    def test_symmetric(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(-0.1)
        with pytest.raises(ValueError):
            binary_entropy(1.1)


class TestClassificationPower:
    def test_fig6_scenario_rap_attribute_has_cp_one(self, example_dataset):
        """Splitting by A perfectly separates when (a1,*,*) is the RAP."""
        assert classification_power(example_dataset, "A") == pytest.approx(1.0)

    def test_fig6_scenario_other_attributes_near_zero(self, example_dataset):
        """B and C split anomalies evenly: no entropy reduction at all."""
        assert classification_power(example_dataset, "B") == pytest.approx(0.0, abs=1e-12)
        assert classification_power(example_dataset, "C") == pytest.approx(0.0, abs=1e-12)

    def test_cp_bounded_between_zero_and_one(self, example_schema):
        rng = np.random.default_rng(2)
        n = example_schema.n_leaves
        for seed in range(5):
            labels = np.random.default_rng(seed).random(n) < 0.3
            ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n), labels)
            for name in example_schema.names:
                cp = classification_power(ds, name)
                assert -1e-12 <= cp <= 1.0 + 1e-12

    def test_all_normal_gives_zero(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert all(v == 0.0 for v in all_classification_powers(ds).values())

    def test_all_anomalous_gives_zero(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(
            example_schema, np.ones(n), np.ones(n), np.ones(n, dtype=bool)
        )
        assert all(v == 0.0 for v in all_classification_powers(ds).values())

    def test_empty_dataset_gives_zero(self, tiny_schema):
        ds = FineGrainedDataset(
            tiny_schema, np.empty((0, 2), dtype=np.int64), np.empty(0), np.empty(0)
        )
        assert classification_power(ds, 0) == 0.0

    def test_accepts_attribute_index(self, example_dataset):
        assert classification_power(example_dataset, 0) == pytest.approx(1.0)

    def test_two_raps_both_attributes_informative(self, fig7_dataset):
        """Fig. 7: RAPs (a1,*,*) and (a2,b2,*) make both A and B informative."""
        cps = all_classification_powers(fig7_dataset)
        assert cps["A"] > 0.1
        assert cps["B"] > 0.01
        assert cps["C"] == pytest.approx(0.0, abs=1e-9)


class TestAlgorithm1:
    def test_deletes_unrelated_attributes(self, example_dataset):
        result = delete_redundant_attributes(example_dataset, t_cp=0.02)
        assert result.kept_names(example_dataset) == ("A",)
        assert set(result.deleted_names(example_dataset)) == {"B", "C"}

    def test_kept_sorted_by_cp_descending(self, fig7_dataset):
        result = delete_redundant_attributes(fig7_dataset, t_cp=0.001)
        cps = result.cp_values
        kept = result.kept_names(fig7_dataset)
        assert list(kept) == sorted(kept, key=lambda n: cps[n], reverse=True)

    def test_threshold_zero_keeps_positive_cp_only(self, example_dataset):
        result = delete_redundant_attributes(example_dataset, t_cp=0.0)
        assert result.kept_names(example_dataset) == ("A",)

    def test_degenerate_all_below_threshold_keeps_everything(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        result = delete_redundant_attributes(ds, t_cp=0.02)
        assert set(result.kept_indices) == {0, 1, 2}
        assert result.deleted_indices == ()

    def test_negative_threshold_rejected(self, example_dataset):
        with pytest.raises(ValueError):
            delete_redundant_attributes(example_dataset, t_cp=-0.1)

    def test_cp_values_cover_all_attributes(self, example_dataset):
        result = delete_redundant_attributes(example_dataset)
        assert set(result.cp_values) == {"A", "B", "C"}

    def test_larger_threshold_deletes_at_least_as_much(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)", "(*, e1_1, e2_0, *)"])
        small = delete_redundant_attributes(ds, t_cp=0.001)
        large = delete_redundant_attributes(ds, t_cp=0.2)
        assert set(large.kept_indices) <= set(small.kept_indices)
