"""Tests for the attribute schema and wildcard combinations."""

import pytest

from repro.core.attribute import WILDCARD, AttributeCombination, AttributeSchema


class TestAttributeSchema:
    def test_names_and_order_preserved(self):
        schema = AttributeSchema({"b": ["x"], "a": ["y", "z"]})
        assert schema.names == ("b", "a")

    def test_sizes_and_leaf_count(self, example_schema):
        assert example_schema.sizes == (3, 2, 2)
        assert example_schema.n_leaves == 12

    def test_cdn_scale_leaf_count(self):
        from repro.data.schema import cdn_schema

        assert cdn_schema().n_leaves == 10560  # 33 * 4 * 4 * 20 (Table I)

    def test_index_of_by_name_and_int(self, example_schema):
        assert example_schema.index_of("B") == 1
        assert example_schema.index_of(2) == 2

    def test_index_of_unknown_raises(self, example_schema):
        with pytest.raises(KeyError):
            example_schema.index_of("missing")
        with pytest.raises(IndexError):
            example_schema.index_of(7)

    def test_encode_decode_roundtrip(self, example_schema):
        for i, name in enumerate(example_schema.names):
            for element in example_schema.elements(name):
                assert example_schema.decode(i, example_schema.encode(i, element)) == element

    def test_encode_unknown_element_raises(self, example_schema):
        with pytest.raises(KeyError):
            example_schema.encode("A", "nope")

    def test_decode_out_of_range_raises(self, example_schema):
        with pytest.raises(IndexError):
            example_schema.decode("A", 99)

    def test_rejects_empty_schema(self):
        with pytest.raises(ValueError):
            AttributeSchema({})

    def test_rejects_empty_elements(self):
        with pytest.raises(ValueError):
            AttributeSchema({"a": []})

    def test_rejects_duplicate_elements(self):
        with pytest.raises(ValueError):
            AttributeSchema({"a": ["x", "x"]})

    def test_rejects_wildcard_element(self):
        with pytest.raises(ValueError):
            AttributeSchema({"a": [WILDCARD]})

    def test_iter_leaf_values_row_major(self, tiny_schema):
        leaves = list(tiny_schema.iter_leaf_values())
        assert len(leaves) == 4
        assert leaves[0] == ("e0_0", "e1_0")
        assert leaves[-1] == ("e0_1", "e1_1")

    def test_leaf_constructor_validates(self, example_schema):
        leaf = example_schema.leaf(["a1", "b1", "c1"])
        assert leaf.is_leaf(example_schema)
        with pytest.raises(ValueError):
            example_schema.leaf(["a1", None, "c1"])

    def test_equality_and_hash(self, example_schema):
        from repro.data.schema import paper_example_schema

        other = paper_example_schema()
        assert example_schema == other
        assert hash(example_schema) == hash(other)

    def test_validate_wrong_arity(self, example_schema):
        with pytest.raises(ValueError):
            example_schema.validate(AttributeCombination(["a1", "b1"]))

    def test_validate_unknown_element(self, example_schema):
        with pytest.raises(KeyError):
            example_schema.validate(AttributeCombination(["zz", None, None]))


class TestAttributeCombination:
    def test_wildcard_normalization(self):
        ac = AttributeCombination(["a1", WILDCARD, None])
        assert ac.values == ("a1", None, None)

    def test_layer_counts_specified(self):
        assert AttributeCombination(["a1", None, "c1"]).layer == 2
        assert AttributeCombination([None, None, None]).layer == 0

    def test_specified_indices(self):
        ac = AttributeCombination(["a1", None, "c1", None])
        assert ac.specified_indices == (0, 2)

    def test_parse_and_str_roundtrip(self):
        text = "(L1, *, *, Site1)"
        ac = AttributeCombination.parse(text)
        assert str(ac) == text
        assert ac.values == ("L1", None, None, "Site1")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            AttributeCombination.parse("()")

    def test_matches_leaf(self):
        ac = AttributeCombination.parse("(a1, *, c1)")
        assert ac.matches(("a1", "b2", "c1"))
        assert not ac.matches(("a2", "b2", "c1"))

    def test_matches_arity_mismatch_raises(self):
        with pytest.raises(ValueError):
            AttributeCombination.parse("(a1, *)").matches(("a1",))

    def test_ancestor_descendant(self):
        parent = AttributeCombination.parse("(a1, *, *)")
        child = AttributeCombination.parse("(a1, b1, *)")
        assert parent.is_ancestor_of(child)
        assert child.is_descendant_of(parent)
        assert not child.is_ancestor_of(parent)
        assert not parent.is_ancestor_of(parent)  # strict

    def test_ancestor_requires_matching_elements(self):
        a = AttributeCombination.parse("(a1, *, *)")
        b = AttributeCombination.parse("(a2, b1, *)")
        assert not a.is_ancestor_of(b)

    def test_parents_replace_one_attribute(self):
        ac = AttributeCombination.parse("(a1, b1, *)")
        parents = set(map(str, ac.parents()))
        assert parents == {"(*, b1, *)", "(a1, *, *)"}

    def test_layer0_has_no_parents(self):
        assert AttributeCombination([None, None]).parents() == []

    def test_children_bind_each_free_attribute(self, example_schema):
        ac = AttributeCombination.parse("(a1, *, *)")
        children = set(map(str, ac.children(example_schema)))
        assert "(a1, b1, *)" in children
        assert "(a1, *, c2)" in children
        assert len(children) == 4  # 2 elements of B + 2 of C

    def test_leaf_has_no_children(self, example_schema):
        leaf = AttributeCombination.parse("(a1, b1, c1)")
        assert leaf.children(example_schema) == []

    def test_ancestors_enumerates_all_strict(self):
        ac = AttributeCombination.parse("(a1, b1, c1)")
        ancestors = set(map(str, ac.ancestors()))
        assert ancestors == {
            "(a1, *, *)",
            "(*, b1, *)",
            "(*, *, c1)",
            "(a1, b1, *)",
            "(a1, *, c1)",
            "(*, b1, c1)",
        }

    def test_every_ancestor_is_ancestor(self):
        ac = AttributeCombination.parse("(a1, b1, c1)")
        for ancestor in ac.ancestors():
            assert ancestor.is_ancestor_of(ac)

    def test_n_covered_leaves(self, example_schema):
        assert AttributeCombination.parse("(a1, *, *)").n_covered_leaves(example_schema) == 4
        assert AttributeCombination.parse("(a1, b1, c1)").n_covered_leaves(example_schema) == 1
        assert AttributeCombination.parse("(*, *, *)").n_covered_leaves(example_schema) == 12

    def test_hashable_and_equal(self):
        a = AttributeCombination.parse("(a1, *, c1)")
        b = AttributeCombination(["a1", None, "c1"])
        assert a == b
        assert len({a, b}) == 1

    def test_ordering_wildcards_first(self):
        coarse = AttributeCombination.parse("(*, b1, *)")
        fine = AttributeCombination.parse("(a1, b1, *)")
        assert coarse < fine
