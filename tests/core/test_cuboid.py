"""Tests for the cuboid lattice (Fig. 2, Table IV, Table V)."""

import math

import pytest

from repro.core.attribute import AttributeCombination
from repro.core.cuboid import (
    Cuboid,
    cuboid_count,
    cuboids_in_layer,
    decrease_ratio,
    decrease_ratio_lower_bound,
    enumerate_cuboids,
    lattice_vertex_labels,
)


class TestCuboid:
    def test_indices_sorted_and_deduped(self):
        assert Cuboid([2, 0, 2]).attribute_indices == (0, 2)

    def test_requires_at_least_one_attribute(self):
        with pytest.raises(ValueError):
            Cuboid([])

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            Cuboid([-1])

    def test_dimension_equals_layer(self):
        cuboid = Cuboid([0, 2, 3])
        assert cuboid.dimension == 3

    def test_length_matches_paper_cdn_examples(self):
        """Section II-B: |Cub_L|=33, |Cub_{L,S}|=660, |Cub_{L,A,O,S}|=10560."""
        from repro.data.schema import cdn_schema

        schema = cdn_schema()
        location, website = 0, 3
        assert Cuboid([location]).length(schema) == 33
        assert Cuboid([location, website]).length(schema) == 660
        assert Cuboid([0, 1, 2, 3]).length(schema) == 10560

    def test_names(self, example_schema):
        assert Cuboid([0, 2]).names(example_schema) == ("A", "C")

    def test_is_parent_of(self):
        assert Cuboid([0]).is_parent_of(Cuboid([0, 1]))
        assert not Cuboid([0]).is_parent_of(Cuboid([1, 2]))
        assert not Cuboid([0, 1]).is_parent_of(Cuboid([0]))

    def test_combinations_enumerates_cartesian_product(self, example_schema):
        combos = list(Cuboid([0, 1]).combinations(example_schema))
        assert len(combos) == 6  # 3 x 2
        assert AttributeCombination.parse("(a2, b2, *)") in combos
        assert all(c.specified_indices == (0, 1) for c in combos)

    def test_combinations_out_of_range_schema(self, tiny_schema):
        with pytest.raises(IndexError):
            list(Cuboid([5]).combinations(tiny_schema))


class TestLatticeEnumeration:
    def test_cuboid_count_formula(self):
        """Fig. 2's generalized form 2**n - 1."""
        for n in range(0, 8):
            assert cuboid_count(n) == 2**n - 1

    def test_enumerate_matches_count(self):
        for n in range(1, 7):
            assert len(enumerate_cuboids(n)) == cuboid_count(n)

    def test_four_attribute_lattice_has_15_cuboids(self):
        """The paper's CDN case: 15 cuboids in 4 layers."""
        cuboids = enumerate_cuboids(4)
        assert len(cuboids) == 15
        per_layer = {layer: len(cuboids_in_layer(4, layer)) for layer in range(1, 5)}
        assert per_layer == {1: 4, 2: 6, 3: 4, 4: 1}  # C(4, d)

    def test_layer_sizes_are_binomials(self):
        for n in range(1, 7):
            for layer in range(1, n + 1):
                assert len(cuboids_in_layer(n, layer)) == math.comb(n, layer)

    def test_enumerate_is_bfs_ordered(self):
        layers = [c.dimension for c in enumerate_cuboids(5)]
        assert layers == sorted(layers)

    def test_out_of_range_layer_is_empty(self):
        assert cuboids_in_layer(3, 0) == []
        assert cuboids_in_layer(3, 4) == []


class TestDecreaseRatio:
    def test_table4_lower_bounds(self):
        """Table IV: 0.5, 0.75, 0.875, 0.9375, 0.96875."""
        expected = {1: 0.5, 2: 0.75, 3: 0.875, 4: 0.9375, 5: 0.96875}
        for k, value in expected.items():
            assert decrease_ratio_lower_bound(k) == pytest.approx(value)

    def test_exact_ratio_exceeds_lower_bound(self):
        """Proof 1: the exact Eq. 2 ratio is strictly above (2^k-1)/2^k."""
        for n in range(2, 9):
            for k in range(1, n):
                assert decrease_ratio(n, k) > decrease_ratio_lower_bound(k)

    def test_deleting_nothing_or_everything(self):
        assert decrease_ratio(4, 0) == 0.0
        assert decrease_ratio(4, 4) == 1.0

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            decrease_ratio(3, 4)
        with pytest.raises(ValueError):
            decrease_ratio(3, -1)
        with pytest.raises(ValueError):
            decrease_ratio_lower_bound(-1)

    def test_monotone_in_k(self):
        ratios = [decrease_ratio(6, k) for k in range(0, 7)]
        assert ratios == sorted(ratios)


class TestTableVMapping:
    def test_layer1_labels(self, example_schema):
        labels = lattice_vertex_labels(example_schema)
        assert str(labels["1-1"]) == "(a1, *, *)"
        assert str(labels["1-3"]) == "(a3, *, *)"
        assert str(labels["1-4"]) == "(*, b1, *)"
        assert str(labels["1-7"]) == "(*, *, c2)"

    def test_layer2_labels_match_table5(self, example_schema):
        """Exact spot checks against the paper's Table V."""
        labels = lattice_vertex_labels(example_schema)
        expected = {
            "2-1": "(a1, b1, *)",
            "2-3": "(a1, *, c1)",
            "2-6": "(a2, b2, *)",
            "2-13": "(*, b1, c1)",
            "2-16": "(*, b2, c2)",
        }
        for key, text in expected.items():
            assert str(labels[key]) == text

    def test_layer3_labels_match_table5(self, example_schema):
        labels = lattice_vertex_labels(example_schema)
        assert str(labels["3-1"]) == "(a1, b1, c1)"
        assert str(labels["3-8"]) == "(a2, b2, c2)"
        assert str(labels["3-12"]) == "(a3, b2, c2)"

    def test_label_counts_per_layer(self, example_schema):
        labels = lattice_vertex_labels(example_schema)
        layer_counts = {}
        for key in labels:
            layer = int(key.split("-")[0])
            layer_counts[layer] = layer_counts.get(layer, 0) + 1
        assert layer_counts == {1: 7, 2: 16, 3: 12}

    def test_max_layer_truncates(self, example_schema):
        labels = lattice_vertex_labels(example_schema, max_layer=1)
        assert all(key.startswith("1-") for key in labels)
        assert len(labels) == 7
