"""Tests for the Fig. 2 / Fig. 7 structural renderings."""

import pytest

from repro.core.lattice_viz import (
    render_cuboid_hierarchy,
    render_search_dag_dot,
    search_dag,
)
from repro.core.search import layerwise_topdown_search
from repro.data.schema import cdn_schema, paper_example_schema


class TestCuboidHierarchy:
    def test_cdn_schema_matches_fig2(self):
        text = render_cuboid_hierarchy(cdn_schema())
        lines = text.splitlines()
        assert len(lines) == 4  # four layers
        assert "Cub_{location}(33)" in lines[0]
        assert "Cub_{location,website}(660)" in lines[1]
        assert "Cub_{location,access_type,os,website}(10560)" in lines[3]

    def test_layer_cuboid_counts(self):
        text = render_cuboid_hierarchy(cdn_schema())
        lines = text.splitlines()
        assert lines[0].count("Cub_") == 4
        assert lines[1].count("Cub_") == 6
        assert lines[2].count("Cub_") == 4
        assert lines[3].count("Cub_") == 1


class TestSearchDag:
    @pytest.fixture
    def outcome_and_dataset(self, fig7_dataset):
        outcome = layerwise_topdown_search(
            fig7_dataset, [0, 1, 2], t_conf=0.8, early_stop=False
        )
        return fig7_dataset, outcome

    def test_fig7_candidate_vertices(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        vertices, __ = search_dag(dataset, outcome)
        status = {v.label: v.status for v in vertices}
        # Fig. 7: (a1,*,*) is vertex 1-1 and (a2,b2,*) is vertex 2-6.
        assert status["1-1"] == "candidate"
        assert status["2-6"] == "candidate"

    def test_fig7_pruned_descendants(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        vertices, __ = search_dag(dataset, outcome)
        status = {v.label: v.status for v in vertices}
        assert status["2-1"] == "pruned"   # (a1,b1,*) under candidate 1-1
        assert status["3-7"] == "pruned"   # (a2,b2,c1,*) under candidate 2-6
        assert status["1-2"] == "visited"  # (a2,*,*): evaluated, normal

    def test_vertex_count_matches_table5(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        vertices, __ = search_dag(dataset, outcome)
        assert len(vertices) == 35

    def test_edges_connect_adjacent_layers(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        __, edges = search_dag(dataset, outcome)
        assert edges
        for parent, child in edges:
            assert int(parent.split("-")[0]) + 1 == int(child.split("-")[0])

    def test_dot_output_well_formed(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        dot = render_search_dag_dot(dataset, outcome)
        assert dot.startswith("digraph search_dag {")
        assert dot.rstrip().endswith("}")
        assert '"1-1" [label="1-1"' in dot
        assert "#e06666" in dot  # candidate fill (red)
        assert "#6fa8dc" in dot  # visited fill (blue)
        assert '"1-1" -> "2-1";' in dot
        assert "rank=same" in dot

    def test_dot_tooltips_carry_combinations(self, outcome_and_dataset):
        dataset, outcome = outcome_and_dataset
        dot = render_search_dag_dot(dataset, outcome)
        assert "(a1, *, *)" in dot
