"""Tests for the case-stacked batch kernel (``core/stacked.py``).

The contract under test is *bitwise* serial equivalence: every stacked
result — aggregates including float value lanes, CP values, kept/deleted
attribute sets, search candidates, stats and stop reasons — must equal
the per-case serial path exactly, not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RAPMiner,
    RAPMinerConfig,
    StackedCaseEngine,
    all_classification_powers,
    batched_layerwise_topdown_search,
    delete_redundant_attributes,
    group_datasets_by_layout,
    layerwise_topdown_search,
    stacked_key_dtype,
)
from repro.core.cuboid import enumerate_cuboids
from repro.core.engine import AggregationEngine
from repro.data.dataset import FineGrainedDataset
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import schema_from_sizes


def make_datasets(n_cases=4, seed=5, sizes=(4, 3, 3, 2)):
    cases = generate_rapmd(
        schema_from_sizes(list(sizes)),
        RAPMDConfig(n_cases=n_cases, n_days=1, seed=seed),
    )
    return [case.dataset for case in cases]


class TestStackedKeyDtype:
    def test_uint32_at_exact_boundary(self):
        # span == 2**32 still fits: the largest key is span - 1.
        assert stacked_key_dtype(2, 2**31) == np.dtype(np.uint32)

    def test_int64_just_above_boundary(self):
        assert stacked_key_dtype(2, 2**31 + 1) == np.dtype(np.int64)

    def test_int64_up_to_exact_capacity(self):
        assert stacked_key_dtype(2**31, 2**32) == np.dtype(np.int64)

    def test_overflow_beyond_int64(self):
        with pytest.raises(OverflowError):
            stacked_key_dtype(2**31 + 1, 2**32)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stacked_key_dtype(-1, 4)


class TestLayoutGrouping:
    def test_shared_layout_is_one_group(self):
        datasets = make_datasets(3)
        assert group_datasets_by_layout(datasets) == [[0, 1, 2]]

    def test_distinct_schemas_split(self):
        a = make_datasets(2, sizes=(3, 2, 4, 2))
        b = make_datasets(2, sizes=(5, 3, 2, 2))
        groups = group_datasets_by_layout([a[0], b[0], a[1], b[1]])
        assert groups == [[0, 2], [1, 3]]

    def test_equal_content_different_buffers_merge(self):
        datasets = make_datasets(2)
        clone = FineGrainedDataset(
            datasets[1].schema,
            datasets[1].codes.copy(),  # same content, different buffer
            datasets[1].v,
            datasets[1].f,
            datasets[1].labels,
        )
        assert group_datasets_by_layout([datasets[0], clone]) == [[0, 1]]

    def test_first_seen_order_preserved(self):
        a = make_datasets(1, sizes=(3, 2, 4, 2))
        b = make_datasets(1, sizes=(5, 3, 2, 2))
        assert group_datasets_by_layout([b[0], a[0]]) == [[0], [1]]


class TestStackedEngineValidation:
    def test_requires_datasets(self):
        with pytest.raises(ValueError):
            StackedCaseEngine([])

    def test_rejects_mixed_schemas(self):
        a = make_datasets(1, sizes=(3, 2, 4, 2))
        b = make_datasets(1, sizes=(5, 3, 2, 2))
        with pytest.raises(ValueError):
            StackedCaseEngine([a[0], b[0]])

    def test_rejects_mixed_leaf_populations(self):
        datasets = make_datasets(2)
        permuted = FineGrainedDataset(
            datasets[1].schema,
            datasets[1].codes[::-1].copy(),
            datasets[1].v,
            datasets[1].f,
            datasets[1].labels,
        )
        with pytest.raises(ValueError):
            StackedCaseEngine([datasets[0], permuted])


class TestStackedAggregates:
    def test_bitwise_equal_to_cold_engine_every_cuboid(self):
        datasets = make_datasets(4)
        stacked = StackedCaseEngine(datasets)
        for cuboid in enumerate_cuboids(stacked.schema.n_attributes):
            per_case = stacked.aggregates(cuboid)
            for slot, dataset in enumerate(datasets):
                ref = AggregationEngine(dataset).aggregate(cuboid)
                got = per_case[slot]
                assert np.array_equal(ref.codes, got.codes)
                assert np.array_equal(ref.support, got.support)
                assert np.array_equal(ref.anomalous_support, got.anomalous_support)
                # Float lanes must be *bitwise* equal: the stacked pass
                # replays the per-bucket addition order of a cold engine.
                assert np.array_equal(ref.v_sum, got.v_sum)
                assert np.array_equal(ref.f_sum, got.f_sum)

    def test_slot_subset_selects_cases(self):
        datasets = make_datasets(3)
        stacked = StackedCaseEngine(datasets)
        cuboid = next(iter(enumerate_cuboids(stacked.schema.n_attributes)))
        subset = stacked.aggregates(cuboid, slots=[2, 0])
        full = stacked.aggregates(cuboid)
        assert np.array_equal(subset[0].anomalous_support, full[2].anomalous_support)
        assert np.array_equal(subset[1].anomalous_support, full[0].anomalous_support)

    def test_private_engine_stays_out_of_registry(self):
        from repro.core.engine import engine_for

        datasets = make_datasets(2)
        stacked = StackedCaseEngine(datasets)
        assert engine_for(datasets[0]) is not stacked.engine


class TestStackedClassificationPower:
    def test_matches_serial_bitwise(self):
        datasets = make_datasets(4)
        stacked = StackedCaseEngine(datasets)
        powers = stacked.classification_powers()
        for slot, dataset in enumerate(datasets):
            serial = all_classification_powers(dataset)
            for i, name in enumerate(dataset.schema.names):
                assert powers[slot, i] == serial[name]

    def test_all_normal_case_has_zero_cp(self):
        datasets = make_datasets(2)
        quiet = FineGrainedDataset(
            datasets[0].schema,
            datasets[0].codes,
            datasets[0].v,
            datasets[0].f,
            np.zeros(datasets[0].n_rows, dtype=bool),
        )
        stacked = StackedCaseEngine([datasets[0], quiet])
        powers = stacked.classification_powers()
        assert np.all(powers[1] == 0.0)

    def test_attribute_deletions_match_serial(self):
        datasets = make_datasets(4)
        stacked = StackedCaseEngine(datasets)
        for t_cp in (0.005, 0.05, 0.5):
            batch = stacked.attribute_deletions(t_cp)
            for slot, dataset in enumerate(datasets):
                serial = delete_redundant_attributes(dataset, t_cp)
                assert batch[slot].kept_indices == serial.kept_indices
                assert batch[slot].deleted_indices == serial.deleted_indices
                assert batch[slot].cp_values == serial.cp_values

    def test_attribute_deletions_reject_negative_threshold(self):
        stacked = StackedCaseEngine(make_datasets(1))
        with pytest.raises(ValueError):
            stacked.attribute_deletions(-0.1)


def assert_outcomes_equal(got, want):
    assert [
        (c.combination, c.confidence, c.support, c.anomalous_support, c.layer)
        for c in got.candidates
    ] == [
        (c.combination, c.confidence, c.support, c.anomalous_support, c.layer)
        for c in want.candidates
    ]
    for field in (
        "n_cuboids_visited",
        "n_combinations_evaluated",
        "n_candidates",
        "n_criteria3_pruned",
        "deepest_layer_visited",
        "early_stopped",
        "stop_reason",
    ):
        assert getattr(got.stats, field) == getattr(want.stats, field), field


class TestBatchedSearch:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"early_stop": False},
            {"max_layer": 2},
            {"t_conf": 0.5},
        ],
    )
    def test_matches_serial_search(self, kwargs):
        datasets = make_datasets(4)
        stacked = StackedCaseEngine(datasets)
        indices = tuple(range(stacked.schema.n_attributes))
        outcomes = batched_layerwise_topdown_search(
            stacked, range(len(datasets)), indices, **kwargs
        )
        for dataset, outcome in zip(datasets, outcomes):
            serial = layerwise_topdown_search(dataset, indices, **kwargs)
            assert_outcomes_equal(outcome, serial)

    def test_attribute_subset(self):
        datasets = make_datasets(3)
        stacked = StackedCaseEngine(datasets)
        indices = (0, 2)
        outcomes = batched_layerwise_topdown_search(
            stacked, range(len(datasets)), indices
        )
        for dataset, outcome in zip(datasets, outcomes):
            serial = layerwise_topdown_search(dataset, indices)
            assert_outcomes_equal(outcome, serial)

    def test_zero_anomalous_slot_short_circuits(self):
        datasets = make_datasets(2)
        quiet = FineGrainedDataset(
            datasets[0].schema,
            datasets[0].codes,
            datasets[0].v,
            datasets[0].f,
            np.zeros(datasets[0].n_rows, dtype=bool),
        )
        stacked = StackedCaseEngine([datasets[0], quiet])
        outcomes = batched_layerwise_topdown_search(
            stacked, [0, 1], tuple(range(stacked.schema.n_attributes))
        )
        assert outcomes[1].candidates == []
        assert outcomes[1].stats.stop_reason == "no_anomalous_leaves"
        serial = layerwise_topdown_search(
            datasets[0], tuple(range(stacked.schema.n_attributes))
        )
        assert_outcomes_equal(outcomes[0], serial)

    def test_rejects_bad_threshold_and_empty_attributes(self):
        stacked = StackedCaseEngine(make_datasets(1))
        with pytest.raises(ValueError):
            batched_layerwise_topdown_search(stacked, [0], (0,), t_conf=1.0)
        with pytest.raises(ValueError):
            batched_layerwise_topdown_search(stacked, [0], ())


class TestRunBatch:
    def assert_results_equal(self, got, want):
        assert [
            (c.combination, c.confidence, c.support, c.anomalous_support, c.layer)
            for c in got.candidates
        ] == [
            (c.combination, c.confidence, c.support, c.anomalous_support, c.layer)
            for c in want.candidates
        ]
        assert got.stats.stop_reason == want.stats.stop_reason
        if want.deletion is None:
            assert got.deletion is None
        else:
            assert got.deletion.kept_indices == want.deletion.kept_indices
            assert got.deletion.cp_values == want.deletion.cp_values

    @pytest.mark.parametrize(
        "config",
        [
            RAPMinerConfig(),
            RAPMinerConfig(enable_attribute_deletion=False),
            RAPMinerConfig(early_stop=False, max_layer=2),
            RAPMinerConfig(layer_normalized_ranking=False),
        ],
    )
    def test_matches_serial_run(self, config):
        datasets = make_datasets(4)
        miner = RAPMiner(config)
        batch = miner.run_batch(datasets)
        for dataset, result in zip(datasets, batch):
            self.assert_results_equal(result, miner.run(dataset))

    def test_k_truncation_matches(self):
        datasets = make_datasets(4)
        miner = RAPMiner()
        batch = miner.run_batch(datasets, k=2)
        for dataset, result in zip(datasets, batch):
            self.assert_results_equal(result, miner.run(dataset, k=2))

    def test_mixed_layouts_scatter_to_input_order(self):
        a = make_datasets(2, sizes=(3, 2, 4, 2), seed=7)
        b = make_datasets(2, sizes=(5, 3, 2, 2), seed=8)
        mixed = [a[0], b[0], a[1], b[1]]
        miner = RAPMiner()
        batch = miner.run_batch(mixed)
        for dataset, result in zip(mixed, batch):
            self.assert_results_equal(result, miner.run(dataset))

    def test_empty_batch(self):
        assert RAPMiner().run_batch([]) == []

    def test_randomized_schema_grid(self):
        rng = np.random.default_rng(2)
        miner = RAPMiner()
        for trial in range(3):
            sizes = tuple(int(rng.integers(2, 6)) for _ in range(4))
            datasets = make_datasets(3, seed=50 + trial, sizes=sizes)
            batch = miner.run_batch(datasets)
            for dataset, result in zip(datasets, batch):
                self.assert_results_equal(result, miner.run(dataset))
