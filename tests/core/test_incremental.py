"""Tests for the warm-start incremental miner."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.config import RAPMinerConfig
from repro.core.incremental import IncrementalRAPMiner
from repro.core.miner import RAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema
from tests.conftest import make_labelled_dataset


def ac(text):
    return AttributeCombination.parse(text)


@pytest.fixture
def incident_intervals():
    """Five consecutive intervals of the same 2-RAP incident."""
    sim = CDNSimulator(cdn_schema(6, 3, 3, 5), CDNSimulatorConfig(seed=31))
    rng = np.random.default_rng(31)
    background = sim.snapshot(100).to_dataset()
    raps = sample_raps(background, 2, rng, min_support=6)
    intervals = []
    for step in range(5):
        snapshot = sim.snapshot(100 + step).to_dataset()
        labelled, __ = inject_failures(snapshot, raps, rng)
        intervals.append(labelled)
    return raps, intervals


class TestFastPath:
    def test_first_interval_is_a_full_run(self, incident_intervals):
        __, intervals = incident_intervals
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        miner.run(intervals[0])
        assert miner.stats.full_runs == 1
        assert miner.stats.fast_path_hits == 0

    def test_persisted_incident_takes_fast_path(self, incident_intervals):
        raps, intervals = incident_intervals
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        for interval in intervals:
            result = miner.run(interval)
            assert set(result.patterns) == set(raps)
        assert miner.stats.full_runs == 1
        assert miner.stats.fast_path_hits == len(intervals) - 1

    def test_fast_path_matches_full_run(self, incident_intervals):
        """The warm-started answer equals an independent full localization."""
        __, intervals = incident_intervals
        config = RAPMinerConfig(enable_attribute_deletion=False)
        incremental = IncrementalRAPMiner(config)
        full = RAPMiner(config)
        for interval in intervals:
            assert set(incremental.localize(interval)) == set(full.localize(interval))

    def test_reset_forces_full_run(self, incident_intervals):
        __, intervals = incident_intervals
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        miner.run(intervals[0])
        miner.reset()
        miner.run(intervals[1])
        assert miner.stats.full_runs == 2


class TestFallback:
    def test_incident_change_triggers_full_run(self, example_schema):
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        first = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        second = make_labelled_dataset(example_schema, ["(a2, b2, *)"])
        assert miner.localize(first) == [ac("(a1, *, *)")]
        assert miner.localize(second) == [ac("(a2, b2, *)")]
        assert miner.stats.full_runs == 2

    def test_incident_widening_triggers_full_run(self, example_schema):
        """When a parent scope lights up, the cached child is no longer a RAP."""
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        narrow = make_labelled_dataset(example_schema, ["(a1, b1, *)"])
        wide = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        assert miner.localize(narrow) == [ac("(a1, b1, *)")]
        assert miner.localize(wide) == [ac("(a1, *, *)")]
        assert miner.stats.full_runs == 2

    def test_new_unexplained_anomalies_trigger_full_run(self, example_schema):
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        first = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        grown = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, b2, *)"])
        miner.localize(first)
        patterns = miner.localize(grown)
        assert set(patterns) == {ac("(a1, *, *)"), ac("(a2, b2, *)")}
        assert miner.stats.full_runs == 2

    def test_incident_clearing_falls_back_to_empty(self, example_schema):
        import numpy as np

        from repro.data.dataset import FineGrainedDataset

        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        first = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        miner.localize(first)
        n = example_schema.n_leaves
        quiet = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert miner.localize(quiet) == []

    def test_small_k_does_not_starve_verification(self, example_schema):
        """Caching the untruncated candidate list: k=1 on interval 1 must not
        make interval 2's verification miss the second RAP."""
        miner = IncrementalRAPMiner(RAPMinerConfig(enable_attribute_deletion=False))
        both = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, b2, *)"])
        top1 = miner.localize(both, k=1)
        assert len(top1) == 1
        again = miner.localize(both, k=2)
        assert set(again) == {ac("(a1, *, *)"), ac("(a2, b2, *)")}
        assert miner.stats.fast_path_hits == 1


class TestValidation:
    def test_min_coverage_bounds(self):
        with pytest.raises(ValueError):
            IncrementalRAPMiner(min_coverage=0.0)
        with pytest.raises(ValueError):
            IncrementalRAPMiner(min_coverage=1.5)
