"""Tests for the streaming delta session (patch-in-place aggregation)."""

import numpy as np
import pytest

from repro.core.config import RAPMinerConfig
from repro.core.delta import DeltaConfig, DeltaSession
from repro.core.incremental import StreamingRAPMiner
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes
from repro.resilience import Budget, DegradationPolicy, StepClock
from tests.conftest import make_labelled_dataset

CONFIG = RAPMinerConfig(enable_attribute_deletion=False)


def make_ticks(schema, patterns, n_ticks, seed=0):
    """Consecutive ticks of one incident: only anomalous rows churn.

    The leaf population (codes, v) is fixed; each tick redraws the
    forecast of the rows under *patterns*, so the changed-row set is
    exactly the anomalous set and its fraction stays well below the
    default auto crossover.
    """
    base = make_labelled_dataset(schema, patterns, seed=seed)
    rng = np.random.default_rng(seed + 1)
    mask = base.labels
    ticks = []
    for _ in range(n_ticks):
        f = base.f.copy()
        f[mask] = base.v[mask] / rng.uniform(0.55, 0.65, int(mask.sum()))
        ticks.append(FineGrainedDataset(schema, base.codes, base.v, f, mask.copy()))
    return ticks


def stateless_candidates(dataset, config=CONFIG):
    """Reference run on a rebuilt dataset: fresh engine, no shared caches."""
    rebuilt = FineGrainedDataset(
        dataset.schema, dataset.codes.copy(), dataset.v, dataset.f, dataset.labels
    )
    return RAPMiner(config).run(rebuilt).candidates


def assert_bit_identical(candidates, reference):
    assert len(candidates) == len(reference)
    for got, want in zip(candidates, reference):
        assert got.combination == want.combination
        assert got.confidence == want.confidence  # bitwise: same float
        assert got.support == want.support
        assert got.anomalous_support == want.anomalous_support


@pytest.fixture
def schema():
    return schema_from_sizes([6, 3, 3])


@pytest.fixture
def ticks(schema):
    return make_ticks(schema, ["(e0_0, *, *)"], 6)


class TestTickPaths:
    def test_first_tick_is_cold(self, ticks):
        session = DeltaSession()
        tick = session.begin_tick(ticks[0])
        assert tick.path == "cold"
        assert tick.reason == "first_tick"
        assert session.stats.cold_ticks == 1

    def test_low_churn_ticks_patch(self, ticks):
        session = DeltaSession()
        miner = RAPMiner(CONFIG)
        for tick_data in ticks:
            tick = session.begin_tick(tick_data)
            miner.run(tick_data, engine=tick.engine)
        assert session.stats.patched_ticks == len(ticks) - 1
        assert session.stats.last_path == "patched"
        assert session.stats.changed_rows > 0

    def test_identical_tick_shares_cached_aggregates(self, ticks):
        session = DeltaSession()
        miner = RAPMiner(CONFIG)
        first = session.begin_tick(ticks[0])
        miner.run(ticks[0], engine=first.engine)
        twin = FineGrainedDataset(
            ticks[0].schema, ticks[0].codes, ticks[0].v, ticks[0].f, ticks[0].labels
        )
        tick = session.begin_tick(twin)
        assert tick.path == "patched"
        assert tick.changed_rows == 0
        assert tick.engine._aggregates == first.engine._aggregates

    def test_churn_above_crossover_falls_back_cold(self, ticks):
        session = DeltaSession(DeltaConfig(crossover=0.05))
        session.begin_tick(ticks[0])
        tick = session.begin_tick(ticks[1])  # ~17% of rows churn
        assert tick.path == "cold"
        assert tick.reason == "fraction"
        assert tick.decision is None  # the miner picks its own serial rung
        assert tick.changed_fraction > 0.05

    def test_reset_forces_cold(self, ticks):
        session = DeltaSession()
        session.begin_tick(ticks[0])
        session.begin_tick(ticks[1])
        session.reset()
        tick = session.begin_tick(ticks[2])
        assert tick.path == "cold"
        assert tick.reason == "first_tick"


class TestEquivalence:
    def test_streaming_candidates_bitwise_equal_stateless(self, ticks):
        # Crossover pinned: the auto mode measures wall-clock latencies,
        # which at this tiny scale would make the path choice timing-
        # dependent (auto behavior is covered by TestAutoCrossover).
        miner = StreamingRAPMiner(CONFIG, delta=DeltaConfig(crossover=0.5))
        for tick_data in ticks:
            produced = miner.run(tick_data).candidates
            assert_bit_identical(produced, stateless_candidates(tick_data))
        assert miner.stats.patched_ticks == len(ticks) - 1

    def test_scheduled_rebase_restores_cold_float_lanes(self, schema):
        from repro.core.engine import engine_for

        # 7 ticks = 6 patched; rebase_every=3 fires after patched ticks
        # 3 and 6, so the final engine has freshly re-based float lanes.
        ticks = make_ticks(schema, ["(e0_0, *, *)"], 7)
        miner = StreamingRAPMiner(
            CONFIG, delta=DeltaConfig(crossover=0.5, rebase_every=3)
        )
        for tick_data in ticks:
            miner.run(tick_data)
        assert miner.stats.rebases == 2
        assert miner.session._since_rebase == 0
        warm = miner.session._engine
        last = ticks[-1]
        rebuilt = FineGrainedDataset(
            schema, last.codes.copy(), last.v, last.f, last.labels
        )
        RAPMiner(CONFIG).run(rebuilt)
        cold = engine_for(rebuilt)
        shared = set(warm._aggregates) & set(cold._aggregates)
        assert shared  # both searched the same lattice
        for indices in shared:
            np.testing.assert_array_equal(
                warm._aggregates[indices].v_sum, cold._aggregates[indices].v_sum
            )
            np.testing.assert_array_equal(
                warm._aggregates[indices].f_sum, cold._aggregates[indices].f_sum
            )

    def test_drift_rebase_triggers_on_tight_tolerance(self, schema):
        ticks = make_ticks(schema, ["(e0_0, *, *)"], 6)
        miner = StreamingRAPMiner(
            CONFIG,
            delta=DeltaConfig(crossover=0.5, rebase_every=1000, drift_rtol=1e-300),
        )
        for tick_data in ticks:
            produced = miner.run(tick_data).candidates
            assert_bit_identical(produced, stateless_candidates(tick_data))
        assert miner.stats.drift_rebases >= 1


class TestLayoutChange:
    """Satellite: capacity growth mid-stream must re-anchor cold, correctly."""

    def test_capacity_growth_cold_rebuilds(self, schema):
        ticks = make_ticks(schema, ["(e0_0, *, *)"], 3)
        miner = StreamingRAPMiner(CONFIG, delta=DeltaConfig(crossover=0.5))
        for tick_data in ticks:
            miner.run(tick_data)
        assert miner.stats.last_path == "patched"
        # A new element value appears: the leaf table grows to a wider
        # schema.  The session must transparently aggregate cold.
        grown_schema = schema_from_sizes([6, 3, 4])
        grown = make_labelled_dataset(grown_schema, ["(e0_0, *, *)"], seed=3)
        produced = miner.run(grown).candidates
        assert miner.stats.last_path == "cold"
        assert miner.stats.last_reason == "layout_change"
        assert_bit_identical(produced, stateless_candidates(grown))

    def test_patching_resumes_after_layout_change(self, schema):
        miner = StreamingRAPMiner(CONFIG, delta=DeltaConfig(crossover=0.5))
        for tick_data in make_ticks(schema, ["(e0_0, *, *)"], 2):
            miner.run(tick_data)
        grown_schema = schema_from_sizes([6, 3, 4])
        for tick_data in make_ticks(grown_schema, ["(e0_0, *, *)"], 3, seed=7):
            produced = miner.run(tick_data).candidates
            assert_bit_identical(produced, stateless_candidates(tick_data))
        assert miner.stats.last_path == "patched"
        assert miner.stats.cold_ticks == 2  # first tick + layout change


class TestDegradationComposition:
    def test_drained_budget_steps_off_delta(self, ticks):
        session = DeltaSession()
        session.begin_tick(ticks[0])
        drained = Budget(1.0, clock=StepClock(step=100.0))
        tick = session.begin_tick(ticks[1], budget=drained, policy=DegradationPolicy())
        assert tick.path == "cold"
        assert tick.decision is not None
        assert tick.decision.tier != "delta"

    def test_healthy_budget_stays_on_delta(self, ticks):
        session = DeltaSession()
        session.begin_tick(ticks[0])
        fresh = Budget(1000.0, clock=StepClock(step=0.001))
        tick = session.begin_tick(ticks[1], budget=fresh, policy=DegradationPolicy())
        assert tick.path == "patched"
        assert tick.decision is not None and tick.decision.tier == "delta"

    def test_expired_deadline_mid_stream_returns_partial(self, ticks):
        miner = StreamingRAPMiner(CONFIG)
        miner.run(ticks[0])
        drained = Budget(1.0, clock=StepClock(step=100.0))
        result = miner.run(ticks[1], budget=drained, degradation=DegradationPolicy())
        assert result.stats.degradation_tier is not None
        assert isinstance(result.candidates, list)  # well-formed partial


class TestAutoCrossover:
    def test_initial_threshold_until_measured(self, ticks):
        session = DeltaSession()
        assert session.crossover == session.config.auto_initial
        session.begin_tick(ticks[0])
        assert session.crossover == session.config.auto_initial

    def test_break_even_from_observed_latencies(self, ticks):
        session = DeltaSession()
        cold = session.begin_tick(ticks[0])
        session.record_tick_seconds(cold, 1.0)
        patched = session.begin_tick(ticks[1])
        assert patched.path == "patched"
        session.record_tick_seconds(patched, 0.01)
        n_rows = ticks[1].n_rows
        expected = 1.0 / ((0.01 / patched.changed_rows) * n_rows)
        lo, hi = session.config.auto_bounds
        assert session.crossover == pytest.approx(min(hi, max(lo, expected)))

    def test_bounds_clamp_noisy_observations(self, ticks):
        session = DeltaSession()
        cold = session.begin_tick(ticks[0])
        session.record_tick_seconds(cold, 1000.0)  # absurdly slow cold tick
        patched = session.begin_tick(ticks[1])
        session.record_tick_seconds(patched, 1e-9)
        assert session.crossover == session.config.auto_bounds[1]


class TestConfigValidation:
    def test_crossover_range(self):
        with pytest.raises(ValueError):
            DeltaConfig(crossover=0.0)
        with pytest.raises(ValueError):
            DeltaConfig(crossover=1.5)

    def test_auto_bounds_ordering(self):
        with pytest.raises(ValueError):
            DeltaConfig(auto_bounds=(0.5, 0.2))

    def test_auto_initial_within_bounds(self):
        with pytest.raises(ValueError):
            DeltaConfig(auto_initial=0.9, auto_bounds=(0.1, 0.5))

    def test_rebase_period_positive(self):
        with pytest.raises(ValueError):
            DeltaConfig(rebase_every=0)

    def test_drift_rtol_positive(self):
        with pytest.raises(ValueError):
            DeltaConfig(drift_rtol=0.0)
