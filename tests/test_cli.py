"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def bundle(tmp_path_factory):
    """A small generated RAPMD bundle on disk."""
    path = tmp_path_factory.mktemp("cli") / "rapmd.json"
    code = main(["generate", "rapmd", "--out", str(path), "--scale", "fast", "--seed", "2"])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])


class TestGenerate:
    def test_writes_bundle(self, bundle, capsys):
        from repro.data.io import load_cases

        cases = load_cases(bundle)
        assert len(cases) > 0
        assert all(case.true_raps for case in cases)

    def test_squeeze_bundle(self, tmp_path, capsys):
        path = tmp_path / "squeeze.json"
        assert main(["generate", "squeeze", "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out


class TestLocalize:
    def test_localizes_single_case(self, bundle, capsys):
        from repro.data.io import load_cases

        case_id = load_cases(bundle)[0].case_id
        code = main(
            ["localize", "--cases", str(bundle), "--case-id", case_id, "--method", "RAPMiner"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert case_id in out
        assert "truth:" in out
        assert "hits:" in out

    def test_unknown_case_id(self, bundle):
        with pytest.raises(SystemExit):
            main(["localize", "--cases", str(bundle), "--case-id", "nope"])

    def test_unknown_method(self, bundle):
        with pytest.raises(SystemExit):
            main(["localize", "--cases", str(bundle), "--method", "Magic"])

    def test_explicit_k(self, bundle, capsys):
        from repro.data.io import load_cases

        case_id = load_cases(bundle)[0].case_id
        main(["localize", "--cases", str(bundle), "--case-id", case_id, "--k", "2"])
        assert "k=2" in capsys.readouterr().out


class TestEvaluate:
    def test_rc_protocol(self, bundle, capsys):
        code = main(
            ["evaluate", "--cases", str(bundle), "--methods", "RAPMiner,Adtributor"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RC@3" in out
        assert "RAPMiner" in out
        assert "Adtributor" in out

    def test_f1_protocol(self, bundle, capsys):
        code = main(
            [
                "evaluate",
                "--cases",
                str(bundle),
                "--methods",
                "RAPMiner",
                "--protocol",
                "f1",
            ]
        )
        assert code == 0
        assert "mean F1" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_prints_breakdown_and_profile(self, bundle, capsys):
        code = main(["analyze", "--cases", str(bundle), "--method", "RAPMiner"])
        assert code == 0
        out = capsys.readouterr().out
        assert "failure breakdown for RAPMiner" in out
        assert "exact" in out
        assert "recommended t_CP" in out

    def test_analyze_respects_k(self, bundle, capsys):
        assert main(["analyze", "--cases", str(bundle), "--k", "1"]) == 0
        assert "failure breakdown" in capsys.readouterr().out


class TestReport:
    def test_report_to_file(self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli_module
        import repro.experiments.report_builder as rb

        monkeypatch.setattr(rb, "build_report", lambda **kw: "# stub")
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.read_text() == "# stub"


class TestGenerateDigest:
    def test_generate_prints_workload_digest(self, tmp_path, capsys):
        path = tmp_path / "digest.json"
        assert main(["generate", "rapmd", "--out", str(path), "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "RAP dimensions" in out
        assert "mean anomalous-leaf ratio" in out


class TestTrace:
    """`repro localize --trace PATH` — the `make trace-demo` assertion set."""

    def test_trace_writes_parseable_jsonl_with_expected_spans(
        self, bundle, tmp_path, capsys
    ):
        from repro import obs
        from repro.data.io import load_cases

        case_id = load_cases(bundle)[0].case_id
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "localize",
                "--cases",
                str(bundle),
                "--case-id",
                case_id,
                "--trace",
                str(trace_path),
            ]
        )
        assert code == 0
        records = obs.read_jsonl(str(trace_path))  # parses line by line
        assert records[0]["type"] == "meta"
        span_names = {r["name"] for r in records if r["type"] == "span"}
        assert {"miner.run", "search.run", "search.layer", "cp.attribute_deletion"} <= span_names
        layer_spans = [
            r for r in records if r["type"] == "span" and r["name"] == "search.layer"
        ]
        assert layer_spans, "expected at least one per-layer search span"
        for record in layer_spans:
            attrs = record["attributes"]
            assert {"layer", "n_cuboids", "n_combinations", "coverage_fraction"} <= set(attrs)
        counter_names = {r["name"] for r in records if r["type"] == "counter"}
        assert "miner_runs_total" in counter_names
        assert any(name.startswith("engine_") for name in counter_names)
        out = capsys.readouterr().out
        assert "trace: wrote" in out
        assert "spans:" in out  # the rendered run summary

    def test_trace_leaves_no_collector_installed(self, bundle, tmp_path):
        from repro import obs
        from repro.data.io import load_cases

        case_id = load_cases(bundle)[0].case_id
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "localize",
                "--cases",
                str(bundle),
                "--case-id",
                case_id,
                "--trace",
                str(trace_path),
            ]
        )
        assert not obs.is_active()


class TestReproduce:
    def test_table4(self, capsys):
        assert main(["reproduce", "table4"]) == 0
        out = capsys.readouterr().out
        assert "0.50000" in out
        assert "0.96875" in out

    def test_fig10b_fast(self, capsys):
        assert main(["reproduce", "fig10b", "--scale", "fast", "--seed", "3"]) == 0
        assert "t_conf" in capsys.readouterr().out

    def test_fig8b_fast(self, capsys):
        assert main(["reproduce", "fig8b", "--scale", "fast", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "RAPMiner" in out
        assert "Squeeze" in out


class TestStreamLocalize:
    def test_replays_bundle_with_verification(self, bundle, capsys):
        code = main(
            ["stream-localize", "--cases", str(bundle), "--verify", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Every case line carries a path, churn and a verification verdict.
        assert "cold" in out
        assert "changed" in out
        assert "MISMATCH" not in out
        assert "verification passed" in out
        assert "amortized" in out

    def test_pinned_crossover_and_rebase_knobs(self, bundle, capsys):
        code = main(
            [
                "stream-localize", "--cases", str(bundle),
                "--crossover", "0.5", "--rebase-every", "8",
            ]
        )
        assert code == 0
        assert "re-bases" in capsys.readouterr().out

    def test_rejects_malformed_crossover(self, bundle):
        with pytest.raises(SystemExit):
            main(["stream-localize", "--cases", str(bundle), "--crossover", "fast"])

    def test_serve_metrics_on_ephemeral_port(self, bundle, capsys):
        from repro import obs

        code = main(
            ["stream-localize", "--cases", str(bundle), "--serve-metrics", "127.0.0.1:0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry: serving http://127.0.0.1:" in out
        assert "for the lifetime of the replay" in out
        # The capture and the server are both torn down after the replay.
        assert not obs.is_active()

    def test_serve_metrics_accepts_bare_port(self, bundle, capsys):
        assert main(
            ["stream-localize", "--cases", str(bundle), "--serve-metrics", "0"]
        ) == 0
        assert "telemetry: serving http://127.0.0.1:" in capsys.readouterr().out

    def test_serve_metrics_rejects_malformed_port(self, bundle):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(
                ["stream-localize", "--cases", str(bundle), "--serve-metrics", "lo:x"]
            )


class TestProfile:
    def trace_path(self, bundle, tmp_path):
        path = tmp_path / "run.jsonl"
        assert main(
            ["localize", "--cases", str(bundle), "--trace", str(path)]
        ) == 0
        return path

    def test_profiles_trace_jsonl(self, bundle, tmp_path, capsys):
        path = self.trace_path(bundle, tmp_path)
        capsys.readouterr()
        assert main(["profile", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        for column in ("span", "count", "self%", "child", "total"):
            assert column in header
        assert "miner.run" in out

    def test_top_limits_rows(self, bundle, tmp_path, capsys):
        path = self.trace_path(bundle, tmp_path)
        capsys.readouterr()
        assert main(["profile", "--trace", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        # Header + one family row + the hidden-count footer.
        assert "below the top-1" in out

    def test_spanless_trace_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "meta", "version": 1, "n_spans": 0}\n')
        assert main(["profile", "--trace", str(path)]) == 1
        assert "no span records" in capsys.readouterr().out


class TestBatchLocalize:
    def test_reports_throughput(self, bundle, capsys):
        code = main(
            ["batch-localize", "--cases", str(bundle), "--workers", "2", "--k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 worker(s)" in out
        assert "cases/s" in out
        assert "transport=shm" in out

    def test_matches_serial_localize_output(self, bundle, capsys):
        main(["batch-localize", "--cases", str(bundle), "--workers", "2", "--k", "3"])
        batch_out = capsys.readouterr().out
        main(["batch-localize", "--cases", str(bundle), "--workers", "1", "--k", "3"])
        serial_out = capsys.readouterr().out
        batch_hits = [l.split()[:3] for l in batch_out.splitlines() if "hits" in l]
        serial_hits = [l.split()[:3] for l in serial_out.splitlines() if "hits" in l]
        assert batch_hits == serial_hits

    def test_npz_bundle_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "rapmd.npz"
        assert main(["generate", "rapmd", "--out", str(path), "--seed", "2"]) == 0
        assert path.read_bytes()[:2] == b"PK"
        capsys.readouterr()
        code = main(
            [
                "batch-localize", "--cases", str(path),
                "--workers", "2", "--transport", "pickle", "--k", "3",
            ]
        )
        assert code == 0
        assert "transport=pickle" in capsys.readouterr().out

    def test_evaluate_with_workers(self, bundle, capsys):
        code = main(
            [
                "evaluate", "--cases", str(bundle), "--methods", "RAPMiner",
                "--protocol", "rc", "--workers", "2",
            ]
        )
        assert code == 0
        assert "RC@3" in capsys.readouterr().out


class TestFleetReplay:
    @pytest.fixture()
    def fleet_log(self, bundle, tmp_path):
        """A complete fleet store persisted from a small serving run."""
        from repro.core.miner import RAPMiner
        from repro.data.io import load_cases
        from repro.fleet import FleetConfig, fleet_localize

        path = tmp_path / "fleet.log"
        fleet_localize(
            RAPMiner(),
            load_cases(bundle)[:3],
            config=FleetConfig(mode="inline", k_from_truth=True),
            store=str(path),
        )
        return path

    def test_replay_verifies_bit_exact(self, fleet_log, capsys):
        code = main(["fleet-localize", "--replay", str(fleet_log)])
        assert code == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_replay_flags_missing_result_rows(self, fleet_log, tmp_path, capsys):
        """A log that crashed mid-drain has fewer results than cases.

        Regression: verification used to zip persisted rows with replay
        results positionally, so a truncated log could still print
        bit-exact (exit 0) without checking every replayed case.
        """
        from repro.fleet import FleetStore

        truncated = tmp_path / "truncated.log"
        with FleetStore(fleet_log, mode="r") as src, FleetStore(truncated) as dst:
            for seq, tenant, case in src.cases():
                dst.append_case(seq, tenant, case)
            for row in src.results()[:-1]:  # drop the last result row
                payload = {
                    k: v for k, v in row.items() if k not in ("seq", "tenant")
                }
                dst.append_result(row["seq"], row["tenant"], payload)
        code = main(["fleet-localize", "--replay", str(truncated)])
        assert code == 1
        out = capsys.readouterr().out
        assert "had no persisted result" in out
        assert "bit-exact" not in out
