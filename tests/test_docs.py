"""Documentation integrity (the ``make docs-check`` gate).

Four drift failure modes, each caught mechanically:

* an intra-doc markdown link whose target file no longer exists;
* a ``repro`` import in a doc code block that no longer resolves
  (renamed module, removed re-export);
* a ``docs/*.md`` file missing from the ``docs/index.md`` map;
* the metric catalogue (``repro.obs.metrics.METRIC_HELP``) and the
  ``docs/observability.md`` tables drifting apart in either direction.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [
        REPO_ROOT / "README.md",
        REPO_ROOT / "CHANGELOG.md",
        REPO_ROOT / "DESIGN.md",
        REPO_ROOT / "EXPERIMENTS.md",
    ]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

# [text](target) — target up to the first ')' or whitespace.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PYTHON_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_id(path):
    return str(path.relative_to(REPO_ROOT))


def intra_doc_targets(path):
    """File-path link targets of one markdown file, anchors stripped."""
    for match in LINK_RE.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if target:
            yield target


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_id)
def test_intra_doc_links_resolve(doc):
    dead = [
        target
        for target in intra_doc_targets(doc)
        if not (doc.parent / target).exists()
    ]
    assert dead == [], f"{doc_id(doc)} links to missing files: {dead}"


def repro_imports(block):
    """(module, names) pairs for every ``repro`` import in a code block.

    Blocks that are deliberate fragments (do not parse as a module) are
    skipped — the gate is about imports drifting, not snippet style.
    """
    try:
        tree = ast.parse(block)
    except SyntaxError:
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name, []
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and node.module.split(".")[0] == "repro":
                yield node.module, [alias.name for alias in node.names]


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_id)
def test_doc_code_blocks_still_import(doc):
    problems = []
    for block in PYTHON_FENCE_RE.findall(doc.read_text()):
        for module_name, names in repro_imports(block):
            try:
                module = importlib.import_module(module_name)
            except ImportError as exc:
                problems.append(f"import {module_name}: {exc}")
                continue
            for name in names:
                if name == "*" or hasattr(module, name):
                    continue
                try:
                    importlib.import_module(f"{module_name}.{name}")
                except ImportError:
                    problems.append(f"from {module_name} import {name}")
    assert problems == [], f"{doc_id(doc)} imports drifted: {problems}"


#: First cell of a catalogue table row: ``| `metric_name` | ...``.
METRIC_ROW_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*_[a-z0-9_]*)`\s*\|", re.MULTILINE)


def test_metric_catalogue_and_docs_stay_in_sync():
    """``METRIC_HELP`` and the observability.md tables cover each other.

    Both directions are enforced so a new ``slo_*`` / ``telemetry_*``
    metric cannot ship undocumented, and the docs cannot keep advertising
    a renamed or deleted family.
    """
    from repro.obs.metrics import METRIC_HELP

    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    undocumented = sorted(
        name for name in METRIC_HELP if f"`{name}`" not in text
    )
    assert undocumented == [], (
        f"METRIC_HELP entries missing from docs/observability.md: {undocumented}"
    )
    documented = set(METRIC_ROW_RE.findall(text))
    phantom = sorted(documented - set(METRIC_HELP))
    assert phantom == [], (
        f"docs/observability.md documents metrics absent from METRIC_HELP: {phantom}"
    )


def test_every_doc_is_indexed():
    index = (REPO_ROOT / "docs" / "index.md").read_text()
    missing = [
        doc.name
        for doc in (REPO_ROOT / "docs").glob("*.md")
        if doc.name != "index.md" and f"({doc.name})" not in index
    ]
    assert missing == [], f"docs/index.md does not list: {missing}"
