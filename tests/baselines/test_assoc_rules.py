"""Tests for the FP-growth association-rule localizer."""

import numpy as np
import pytest

from repro.baselines.assoc_rules import AssociationRuleConfig, AssociationRuleLocalizer
from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


class TestLocalization:
    def test_finds_single_rap(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        result = AssociationRuleLocalizer().localize(ds, k=1)
        assert result == [AttributeCombination.parse("(a1, *, *)")]

    def test_finds_multi_dimensional_rap(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, e2_1, *)"])
        result = AssociationRuleLocalizer().localize(ds, k=1)
        assert result == [AttributeCombination.parse("(e0_0, *, e2_1, *)")]

    def test_finds_multiple_raps(self, four_attr_schema):
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(*, e1_1, e2_0, *)"]
        )
        result = AssociationRuleLocalizer().localize(ds, k=2)
        assert AttributeCombination.parse("(e0_0, *, *, *)") in result

    def test_no_anomalies_empty(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert AssociationRuleLocalizer().localize(ds) == []

    def test_min_confidence_filters_weak_rules(self, example_schema):
        """With anomalies only under (a1,b1,*), the rule for (a1,*,*) has
        confidence 0.5 and must be dropped at min_confidence=0.8."""
        ds = make_labelled_dataset(example_schema, ["(a1, b1, *)"])
        config = AssociationRuleConfig(min_confidence=0.8)
        result = AssociationRuleLocalizer(config).localize(ds, k=10)
        assert AttributeCombination.parse("(a1, *, *)") not in result
        assert AttributeCombination.parse("(a1, b1, *)") in result

    def test_coarser_rule_preferred_on_equal_evidence(self, example_schema):
        """(a1,*,*) and its children all have confidence 1; coverage ranks
        the coarse pattern first."""
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        ranked = AssociationRuleLocalizer().localize(ds, k=5)
        assert ranked[0] == AttributeCombination.parse("(a1, *, *)")

    def test_max_length_bound(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, e2_0, *)"])
        config = AssociationRuleConfig(max_length=2)
        result = AssociationRuleLocalizer(config).localize(ds, k=10)
        assert all(p.layer <= 2 for p in result)

    def test_min_support_ratio_prunes_rare_patterns(self, four_attr_schema):
        """A RAP covering few anomalies disappears at a high support ratio."""
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(e0_1, e1_0, e2_0, e3_0)"]
        )
        config = AssociationRuleConfig(min_support_ratio=0.5)
        result = AssociationRuleLocalizer(config).localize(ds, k=10)
        assert AttributeCombination.parse("(e0_1, e1_0, e2_0, e3_0)") not in result
