"""Contract tests: every localizer honours the shared interface.

Parametrized over the full method cohort (RAPMiner + 5 baselines), these
tests pin the behavioural guarantees the experiment harness and the
service layer rely on, independent of each method's quality.
"""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import cdn_schema
from repro.experiments.presets import all_methods


@pytest.fixture(scope="module")
def labelled_case():
    sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=71))
    background = sim.snapshot(400).to_dataset()
    rng = np.random.default_rng(71)
    raps = sample_raps(background, 2, rng, min_support=6)
    labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5, 0.5])
    return labelled


@pytest.fixture(scope="module")
def empty_case():
    """A genuinely quiet interval: no labels AND actuals match forecasts
    (value-based methods like Adtributor see nothing to explain either)."""
    sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=71))
    snap = sim.snapshot(400)
    return FineGrainedDataset(snap.schema, snap.codes, snap.f.copy(), snap.f.copy())


METHODS = all_methods()


@pytest.mark.parametrize("method", METHODS, ids=lambda m: m.name)
class TestLocalizerContract:
    def test_returns_attribute_combinations(self, method, labelled_case):
        result = method.localize(labelled_case, k=3)
        assert isinstance(result, list)
        assert all(isinstance(p, AttributeCombination) for p in result)

    def test_patterns_fit_schema(self, method, labelled_case):
        for pattern in method.localize(labelled_case, k=3):
            labelled_case.schema.validate(pattern)

    def test_respects_k(self, method, labelled_case):
        assert len(method.localize(labelled_case, k=1)) <= 1
        assert len(method.localize(labelled_case, k=3)) <= 3

    def test_no_anomalies_returns_empty(self, method, empty_case):
        assert method.localize(empty_case, k=3) == []

    def test_deterministic(self, method, labelled_case):
        first = method.localize(labelled_case, k=3)
        second = method.localize(labelled_case, k=3)
        assert first == second

    def test_does_not_mutate_dataset(self, method, labelled_case):
        codes = labelled_case.codes.copy()
        v = labelled_case.v.copy()
        f = labelled_case.f.copy()
        labels = labelled_case.labels.copy()
        method.localize(labelled_case, k=3)
        assert np.array_equal(labelled_case.codes, codes)
        assert np.array_equal(labelled_case.v, v)
        assert np.array_equal(labelled_case.f, f)
        assert np.array_equal(labelled_case.labels, labels)

    def test_no_duplicate_patterns(self, method, labelled_case):
        result = method.localize(labelled_case, k=5)
        assert len(result) == len(set(result))

    def test_k_none_is_allowed(self, method, labelled_case):
        result = method.localize(labelled_case, k=None)
        assert isinstance(result, list)

    def test_has_display_name(self, method):
        assert isinstance(method.name, str) and method.name
