"""Tests for the HotSpot extension baseline (MCTS + ripple effect)."""

import numpy as np
import pytest

from repro.baselines.hotspot import HotSpot, HotSpotConfig
from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import inject_failures, sample_raps
from repro.data.schema import schema_from_sizes


@pytest.fixture
def background():
    schema = schema_from_sizes([5, 4, 4, 3])
    rng = np.random.default_rng(37)
    n = schema.n_leaves
    v = rng.lognormal(3.0, 1.0, n)
    return FineGrainedDataset.full(schema, v, v.copy())


class TestLocalization:
    def test_single_cuboid_rap_recovered(self, background):
        rng = np.random.default_rng(41)
        raps = sample_raps(background, 1, rng, dimensions=[1])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5])
        assert HotSpot().localize(labelled, k=1) == list(raps)

    def test_two_raps_same_cuboid(self, background):
        """HotSpot's stated scope: multiple root causes in one cuboid."""
        from repro.core.cuboid import Cuboid

        rng = np.random.default_rng(43)
        raps = sample_raps(background, 2, rng, cuboid=Cuboid([0, 1]))
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5, 0.5])
        predicted = HotSpot().localize(labelled, k=2)
        assert set(predicted) == set(raps)

    def test_empty_without_anomalies(self, background):
        assert HotSpot().localize(background) == []

    def test_deterministic_under_seed(self, background):
        rng = np.random.default_rng(47)
        raps = sample_raps(background, 1, rng, dimensions=[2])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.4])
        a = HotSpot(HotSpotConfig(seed=5)).localize(labelled, k=2)
        b = HotSpot(HotSpotConfig(seed=5)).localize(labelled, k=2)
        assert a == b

    def test_max_layer_caps_depth(self, background):
        rng = np.random.default_rng(53)
        raps = sample_raps(background, 1, rng, dimensions=[1])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5])
        config = HotSpotConfig(max_layer=1)
        result = HotSpot(config).localize(labelled, k=3)
        assert all(p.layer == 1 for p in result)

    def test_target_score_early_exit_still_correct(self, background):
        rng = np.random.default_rng(59)
        raps = sample_raps(background, 1, rng, dimensions=[1])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5])
        config = HotSpotConfig(target_score=0.5)
        assert HotSpot(config).localize(labelled, k=1) == list(raps)

    def test_k_truncates(self, background):
        from repro.core.cuboid import Cuboid

        rng = np.random.default_rng(61)
        raps = sample_raps(background, 2, rng, cuboid=Cuboid([0]))
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5, 0.5])
        assert len(HotSpot().localize(labelled, k=1)) == 1
