"""Tests for the Squeeze baseline (clustering + GPS)."""

import numpy as np
import pytest

from repro.baselines.squeeze import (
    Squeeze,
    SqueezeConfig,
    cluster_deviations,
    deviation_score,
    generalized_potential_score,
)
from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from repro.data.injection import InjectionConfig, inject_failures, sample_raps
from repro.data.schema import schema_from_sizes


@pytest.fixture
def background():
    schema = schema_from_sizes([6, 5, 4, 4])
    rng = np.random.default_rng(17)
    n = schema.n_leaves
    v = rng.lognormal(3.0, 1.0, n)
    return FineGrainedDataset.full(schema, v, v.copy())


class TestDeviationScore:
    def test_zero_when_matching(self):
        v = np.array([10.0])
        assert deviation_score(v, v)[0] == pytest.approx(0.0)

    def test_positive_for_drops(self):
        assert deviation_score(np.array([5.0]), np.array([10.0]))[0] > 0.0

    def test_bounded_by_two(self):
        d = deviation_score(np.array([0.0]), np.array([10.0]))[0]
        assert d == pytest.approx(2.0)


class TestClustering:
    def test_single_tight_mode(self):
        values = np.full(50, 0.4) + np.random.default_rng(0).normal(0, 1e-4, 50)
        clusters = cluster_deviations(values)
        assert len(clusters) == 1
        assert len(clusters[0]) == 50

    def test_two_separated_modes(self):
        rng = np.random.default_rng(1)
        values = np.concatenate(
            [rng.normal(0.2, 0.005, 40), rng.normal(0.7, 0.005, 60)]
        )
        clusters = cluster_deviations(values)
        assert len(clusters) == 2
        assert len(clusters[0]) == 60  # largest first

    def test_empty_input(self):
        assert cluster_deviations(np.array([])) == []

    def test_identical_values_one_cluster(self):
        clusters = cluster_deviations(np.full(10, 0.3))
        assert len(clusters) == 1

    def test_min_cluster_size_filters(self):
        rng = np.random.default_rng(2)
        values = np.concatenate([rng.normal(0.2, 0.005, 50), [0.9]])
        clusters = cluster_deviations(values, min_cluster_size=3)
        assert all(len(c) >= 3 for c in clusters)

    def test_uniform_spread_fragments(self):
        """RAPMD-style uniform deviations at realistic case sizes (a few
        dozen anomalous leaves) fragment into several clusters — part of
        the mechanism behind Squeeze's degradation in Fig. 8(b)."""
        rng = np.random.default_rng(3)
        values = rng.uniform(0.1, 0.9, 60)
        clusters = cluster_deviations(values)
        assert len(clusters) >= 2


class TestGPS:
    def make_case(self, background, dev=0.5):
        rng = np.random.default_rng(23)
        raps = sample_raps(background, 1, rng, dimensions=[2])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[dev])
        return labelled, raps[0]

    def test_true_rap_scores_near_one(self, background):
        labelled, rap = self.make_case(background)
        score = generalized_potential_score(
            labelled, labelled.mask_of(rap), labelled.labels
        )
        assert score > 0.95

    def test_partial_coverage_scores_lower(self, background):
        labelled, rap = self.make_case(background)
        full = generalized_potential_score(labelled, labelled.mask_of(rap), labelled.labels)
        half_mask = labelled.mask_of(rap).copy()
        half_mask[np.flatnonzero(half_mask)[::2]] = False
        half = generalized_potential_score(labelled, half_mask, labelled.labels)
        assert half < full

    def test_over_coverage_scores_lower(self, background):
        labelled, rap = self.make_case(background)
        full = generalized_potential_score(labelled, labelled.mask_of(rap), labelled.labels)
        over = generalized_potential_score(
            labelled, np.ones(labelled.n_rows, dtype=bool), labelled.labels
        )
        assert over < full

    def test_empty_selection_is_minus_one(self, background):
        assert generalized_potential_score(
            background, np.zeros(background.n_rows, dtype=bool), background.labels
        ) == -1.0


class TestLocalization:
    def test_recovers_raps_under_its_assumptions(self, background):
        """Same cuboid + shared magnitude: the Squeeze dataset's setting."""
        from repro.core.cuboid import Cuboid

        rng = np.random.default_rng(29)
        raps = sample_raps(background, 2, rng, cuboid=Cuboid([0, 1]))
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.5, 0.5])
        predicted = Squeeze().localize(labelled, k=2)
        assert set(predicted) == set(raps)

    def test_empty_without_anomalies(self, background):
        assert Squeeze().localize(background) == []

    def test_k_truncates(self, background):
        rng = np.random.default_rng(31)
        raps = sample_raps(background, 2, rng, dimensions=[1])
        labelled, __ = inject_failures(background, raps, rng, per_rap_dev=[0.4, 0.4])
        assert len(Squeeze().localize(labelled, k=1)) == 1
