"""Tests for the recursive Adtributor extension baseline."""

import numpy as np
import pytest

from repro.baselines.adtributor import Adtributor
from repro.baselines.r_adtributor import RecursiveAdtributor, RecursiveAdtributorConfig
from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


def ac(text):
    return AttributeCombination.parse(text)


class TestRecursiveAdtributor:
    def test_matches_adtributor_on_one_dimensional_rap(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        assert RecursiveAdtributor().localize(ds, k=1) == Adtributor().localize(ds, k=1)

    def test_finds_two_dimensional_rap(self, four_attr_schema):
        """The whole point of the recursion: plain Adtributor scores 0 here."""
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, *, *)"])
        recursive = RecursiveAdtributor().localize(ds, k=1)
        flat = Adtributor().localize(ds, k=1)
        assert recursive == [ac("(e0_0, e1_1, *, *)")]
        assert flat != recursive

    def test_finds_three_dimensional_rap(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_1, *, e2_0, e3_1)"])
        result = RecursiveAdtributor().localize(ds, k=1)
        assert result == [ac("(e0_1, *, e2_0, e3_1)")]

    def test_stops_at_pure_coarse_pattern(self, four_attr_schema):
        """Must not over-refine a RAP that is already pure at depth 1."""
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)"])
        result = RecursiveAdtributor().localize(ds, k=1)
        assert result == [ac("(e0_0, *, *, *)")]

    def test_max_depth_bounds_layer(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, e2_0, *)"])
        config = RecursiveAdtributorConfig(max_depth=2)
        result = RecursiveAdtributor(config).localize(ds, k=3)
        assert result
        assert all(p.layer <= 2 for p in result)

    def test_no_change_returns_empty(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert RecursiveAdtributor().localize(ds) == []

    def test_coarser_explanations_rank_first(self, four_attr_schema):
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(e0_1, e1_1, *, *)"]
        )
        ranked = RecursiveAdtributor().localize(ds, k=4)
        layers = [p.layer for p in ranked]
        assert layers == sorted(layers)

    def test_k_truncates(self, four_attr_schema):
        ds = make_labelled_dataset(
            four_attr_schema, ["(e0_0, *, *, *)", "(e0_1, *, *, *)"]
        )
        assert len(RecursiveAdtributor().localize(ds, k=1)) == 1

    def test_no_duplicates(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, *, *)"])
        result = RecursiveAdtributor().localize(ds, k=10)
        assert len(result) == len(set(result))

    def test_beats_flat_adtributor_on_rapmd_style_case(self):
        """Sanity: recursion recovers multi-dim RAPs that flat misses."""
        from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
        from repro.data.injection import inject_failures, sample_raps
        from repro.data.schema import cdn_schema
        from repro.metrics.localization import recall_at_k

        sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=91))
        rng = np.random.default_rng(91)
        pairs_flat = []
        pairs_recursive = []
        for step in range(6):
            background = sim.snapshot(200 + step).to_dataset()
            raps = sample_raps(background, 2, rng, dimensions=[2], min_support=4)
            labelled, __ = inject_failures(background, raps, rng)
            pairs_flat.append((Adtributor().localize(labelled, k=3), raps))
            pairs_recursive.append((RecursiveAdtributor().localize(labelled, k=3), raps))
        assert recall_at_k(pairs_recursive, 3) > recall_at_k(pairs_flat, 3)
