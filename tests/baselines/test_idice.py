"""Tests for the iDice baseline."""

import numpy as np
import pytest

from repro.baselines.idice import IDice, IDiceConfig
from repro.core.attribute import AttributeCombination
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


class TestLocalization:
    def test_isolates_single_rap(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        result = IDice().localize(ds, k=1)
        assert result == [AttributeCombination.parse("(a1, *, *)")]

    def test_finds_two_dimensional_combination(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, *, *)"])
        result = IDice().localize(ds, k=1)
        assert result == [AttributeCombination.parse("(e0_0, e1_1, *, *)")]

    def test_no_anomalies_returns_empty(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert IDice().localize(ds) == []

    def test_impact_pruning_drops_tiny_combinations(self, four_attr_schema):
        """A single anomalous leaf below the impact ratio yields no candidate
        at the configured depth."""
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, *, *, *)", "(e0_1, e1_0, e2_0, e3_0)"])
        config = IDiceConfig(min_impact_ratio=0.3)
        result = IDice(config).localize(ds, k=5)
        leaf = AttributeCombination.parse("(e0_1, e1_0, e2_0, e3_0)")
        assert leaf not in result

    def test_change_detection_requires_concentration(self, example_schema):
        """A combination whose anomaly ratio barely exceeds the global ratio
        is pruned at a high change factor but kept at a low one."""
        ds = make_labelled_dataset(example_schema, ["(a1, b1, *)", "(a1, b2, c1)"])
        diluted = AttributeCombination.parse("(a1, *, *)")  # ratio 0.75 vs global 0.25
        strict = IDice(IDiceConfig(change_factor=3.5)).localize(ds, k=20)
        loose = IDice(IDiceConfig(change_factor=1.5)).localize(ds, k=20)
        assert diluted not in strict
        assert diluted in loose

    def test_max_depth_limits_combination_length(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, e2_0, *)"])
        result = IDice(IDiceConfig(max_depth=2)).localize(ds, k=10)
        assert all(p.layer <= 2 for p in result)

    def test_ranking_prefers_higher_isolation_power(self, example_schema):
        """The exact RAP isolates perfectly and must precede sub-patterns."""
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        ranked = IDice().localize(ds, k=3)
        assert ranked[0] == AttributeCombination.parse("(a1, *, *)")

    def test_beam_width_bounds_search(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, *, *)"])
        narrow = IDice(IDiceConfig(beam_width=1)).localize(ds, k=3)
        assert len(narrow) >= 1  # still returns something sensible
