"""Tests for the Apriori miner and the pluggable rule backend."""

import pytest

from repro.baselines.apriori import apriori
from repro.baselines.assoc_rules import AssociationRuleConfig, AssociationRuleLocalizer
from repro.baselines.fpgrowth import fpgrowth
from tests.baselines.test_fpgrowth import CLASSIC, brute_force_itemsets


class TestApriori:
    def test_matches_brute_force_classic(self):
        for min_support in (1, 2, 3, 4):
            assert apriori(CLASSIC, min_support) == brute_force_itemsets(
                CLASSIC, min_support
            )

    def test_matches_fpgrowth(self):
        for min_support in (1, 2, 3):
            assert apriori(CLASSIC, min_support) == fpgrowth(CLASSIC, min_support)

    def test_max_length(self):
        result = apriori(CLASSIC, 1, max_length=2)
        assert result == brute_force_itemsets(CLASSIC, 1, max_length=2)

    def test_empty_and_invalid(self):
        assert apriori([], 1) == {}
        with pytest.raises(ValueError):
            apriori(CLASSIC, 0)

    def test_random_agreement_with_fpgrowth(self):
        import random

        rng = random.Random(11)
        alphabet = list("abcdefgh")
        transactions = [
            rng.sample(alphabet, rng.randint(1, 6)) for __ in range(30)
        ]
        for min_support in (2, 4, 8):
            assert apriori(transactions, min_support) == fpgrowth(
                transactions, min_support
            )


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            AssociationRuleConfig(backend="eclat")

    def test_both_backends_localize_identically(self, example_schema):
        from tests.conftest import make_labelled_dataset

        ds = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, b2, *)"])
        fp = AssociationRuleLocalizer(AssociationRuleConfig(backend="fpgrowth"))
        ap = AssociationRuleLocalizer(AssociationRuleConfig(backend="apriori"))
        assert fp.localize(ds, k=5) == ap.localize(ds, k=5)
