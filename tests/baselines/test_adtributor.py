"""Tests for the Adtributor baseline."""

import numpy as np
import pytest

from repro.baselines.adtributor import Adtributor, AdtributorConfig, _surprise
from repro.core.attribute import AttributeCombination
from repro.data.injection import inject_failures, sample_raps
from repro.data.dataset import FineGrainedDataset
from tests.conftest import make_labelled_dataset


class TestSurprise:
    def test_zero_when_distributions_match(self):
        assert _surprise(0.3, 0.3) == pytest.approx(0.0)

    def test_positive_when_shares_shift(self):
        assert _surprise(0.1, 0.4) > 0.0

    def test_handles_zero_probabilities(self):
        assert _surprise(0.0, 0.5) > 0.0
        assert _surprise(0.5, 0.0) > 0.0
        assert _surprise(0.0, 0.0) == 0.0


class TestLocalization:
    def test_finds_one_dimensional_rap(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        result = Adtributor().localize(ds, k=1)
        assert result == [AttributeCombination.parse("(a1, *, *)")]

    def test_only_returns_one_dimensional_patterns(self, four_attr_schema):
        ds = make_labelled_dataset(four_attr_schema, ["(e0_0, e1_1, *, *)"])
        for pattern in Adtributor().localize(ds, k=5):
            assert pattern.layer == 1

    def test_no_change_returns_empty(self, example_schema):
        n = example_schema.n_leaves
        ds = FineGrainedDataset.full(example_schema, np.ones(n), np.ones(n))
        assert Adtributor().localize(ds) == []

    def test_finds_multiple_elements_of_one_attribute(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, *, *)"])
        result = Adtributor().localize(ds, k=2)
        texts = {str(p) for p in result}
        assert texts == {"(a1, *, *)", "(a2, *, *)"}

    def test_succinctness_bound_respected(self, example_schema):
        config = AdtributorConfig(max_elements_per_attribute=1, tep=0.4)
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, *, *)"])
        result = Adtributor(config).localize(ds)
        per_attr = {}
        for pattern in result:
            attr = pattern.specified_indices[0]
            per_attr[attr] = per_attr.get(attr, 0) + 1
        assert all(count <= 1 for count in per_attr.values())

    def test_k_truncates(self, example_schema):
        ds = make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, *, *)"])
        assert len(Adtributor().localize(ds, k=1)) == 1

    def test_rapmd_style_one_dim_recovery(self):
        """On injected CDN data with a 1-D RAP, Adtributor should score it top."""
        from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
        from repro.data.schema import cdn_schema

        sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=13))
        background = sim.snapshot(400).to_dataset()
        rng = np.random.default_rng(13)
        raps = sample_raps(background, 1, rng, dimensions=[1])
        labelled, __ = inject_failures(background, raps, rng)
        result = Adtributor().localize(labelled, k=1)
        assert result == list(raps)
