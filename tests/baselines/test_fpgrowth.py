"""Tests for the from-scratch FP-growth implementation."""

import itertools
from collections import defaultdict

import pytest

from repro.baselines.fpgrowth import FPTree, fpgrowth


def brute_force_itemsets(transactions, min_support, max_length=None):
    """Reference implementation: count every subset directly."""
    counts = defaultdict(int)
    for transaction in transactions:
        items = sorted(set(transaction))
        limit = len(items) if max_length is None else min(max_length, len(items))
        for r in range(1, limit + 1):
            for subset in itertools.combinations(items, r):
                counts[frozenset(subset)] += 1
    return {s: c for s, c in counts.items() if c >= min_support}


CLASSIC = [
    ["a", "b", "c"],
    ["a", "b"],
    ["a", "c"],
    ["b", "c"],
    ["a", "b", "c", "d"],
]


class TestFPTree:
    def test_insert_shares_prefixes(self):
        tree = FPTree()
        tree.insert(["a", "b"], 1)
        tree.insert(["a", "c"], 1)
        assert len(tree.root.children) == 1
        assert tree.root.children["a"].count == 2

    def test_header_chains_all_nodes(self):
        tree = FPTree()
        tree.insert(["a", "b"], 1)
        tree.insert(["c", "b"], 1)
        assert len(list(tree.nodes_of("b"))) == 2

    def test_prefix_paths(self):
        tree = FPTree()
        tree.insert(["a", "b"], 2)
        tree.insert(["c", "b"], 1)
        paths = {tuple(p): c for p, c in tree.prefix_paths("b")}
        assert paths == {("a",): 2, ("c",): 1}

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert(["a", "b", "c"], 3)
        assert tree.is_single_path() == [("a", 3), ("b", 3), ("c", 3)]
        tree.insert(["a", "x"], 1)
        assert tree.is_single_path() is None

    def test_empty_tree(self):
        assert FPTree().is_empty


class TestFPGrowth:
    def test_matches_brute_force_classic(self):
        for min_support in (1, 2, 3):
            assert fpgrowth(CLASSIC, min_support) == brute_force_itemsets(
                CLASSIC, min_support
            )

    def test_max_length_bound(self):
        result = fpgrowth(CLASSIC, 1, max_length=2)
        assert all(len(s) <= 2 for s in result)
        expected = brute_force_itemsets(CLASSIC, 1, max_length=2)
        assert result == expected

    def test_duplicates_within_transaction_collapsed(self):
        result = fpgrowth([["a", "a", "b"]], 1)
        assert result[frozenset(["a"])] == 1
        assert result[frozenset(["a", "b"])] == 1

    def test_min_support_filters(self):
        result = fpgrowth(CLASSIC, 4)
        assert result == {frozenset(["a"]): 4, frozenset(["b"]): 4, frozenset(["c"]): 4}

    def test_empty_transactions(self):
        assert fpgrowth([], 1) == {}
        assert fpgrowth([[], []], 1) == {}

    def test_invalid_min_support(self):
        with pytest.raises(ValueError):
            fpgrowth(CLASSIC, 0)

    def test_tuple_items_supported(self):
        transactions = [[(0, 1), (1, 2)], [(0, 1)], [(0, 1), (1, 2)]]
        result = fpgrowth(transactions, 2)
        assert result[frozenset([(0, 1)])] == 3
        assert result[frozenset([(0, 1), (1, 2)])] == 2

    def test_matches_brute_force_random(self):
        import random

        rng = random.Random(7)
        alphabet = list("abcdefg")
        transactions = [
            rng.sample(alphabet, rng.randint(1, len(alphabet))) for __ in range(40)
        ]
        for min_support in (2, 5, 10):
            assert fpgrowth(transactions, min_support) == brute_force_itemsets(
                transactions, min_support
            )

    def test_single_transaction_all_subsets(self):
        result = fpgrowth([["x", "y", "z"]], 1)
        assert len(result) == 7  # 2**3 - 1 subsets
