"""Tests for the online localization service (Fig. 1 operational loop)."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.detection.detectors import DeviationThresholdDetector
from repro.detection.forecasting import SeasonalNaiveForecaster
from repro.service.alarm import DeviationAlarm
from repro.service.pipeline import IncidentReport, LocalizationService, ScopeImpact

SAMPLE_EVERY = 30
PERIOD = 1440 // SAMPLE_EVERY  # one simulated day of samples


@pytest.fixture
def simulator():
    return CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=5, noise_sigma=0.02))


@pytest.fixture
def service(simulator):
    svc = LocalizationService(
        schema=simulator.schema,
        codes=simulator.snapshot(0).codes,
        forecaster=SeasonalNaiveForecaster(period=PERIOD),
        detector=DeviationThresholdDetector(threshold=0.3),
        alarm=DeviationAlarm(threshold=0.05),
        history_capacity=PERIOD,
        min_history=PERIOD,
    )
    # Warm up with one full day so the seasonal forecast is available.
    day = np.stack(
        [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
    )
    svc.warm_up(day)
    return svc


def values_at(simulator, step):
    return simulator.snapshot(step).v


class TestQuietOperation:
    def test_no_incident_on_normal_traffic(self, service, simulator):
        for step in range(1440, 1440 + 10 * SAMPLE_EVERY, SAMPLE_EVERY):
            assert service.observe(values_at(simulator, step)) is None
        assert service.incidents_raised == 0

    def test_insufficient_history_never_alarms(self, simulator):
        svc = LocalizationService(
            schema=simulator.schema,
            codes=simulator.snapshot(0).codes,
            min_history=50,
            history_capacity=50,
        )
        crashed = values_at(simulator, 0) * 0.01
        assert svc.observe(crashed) is None  # no history yet -> no judgment


class TestIncidentFlow:
    def drop(self, values, codes, location_code, factor=0.2):
        out = values.copy()
        out[codes[:, 0] == location_code] *= factor
        return out

    def test_incident_detected_and_localized(self, service, simulator):
        # One quiet step, then location L3 collapses.
        step = 1440
        assert service.observe(values_at(simulator, step)) is None
        step += SAMPLE_EVERY
        crashed = self.drop(values_at(simulator, step), service.codes, 2)
        report = service.observe(crashed)
        assert report is not None
        assert report.patterns[0] == AttributeCombination.parse("(L3, *, *, *)")
        assert report.anomalous_leaves > 0
        assert service.incidents_raised == 1

    def test_report_impact_numbers(self, service, simulator):
        step = 1440
        values = values_at(simulator, step)
        # Crash the highest-volume location so the aggregate alarm trips.
        shares = [values[service.codes[:, 0] == c].sum() for c in range(6)]
        heaviest = int(np.argmax(shares))
        crashed = self.drop(values, service.codes, heaviest, factor=0.3)
        report = service.observe(crashed)
        assert report is not None
        scope = report.scopes[0]
        assert scope.pattern == AttributeCombination.parse(f"(L{heaviest + 1}, *, *, *)")
        assert 0.5 < scope.drop_fraction < 0.9
        assert scope.anomalous_leaves == scope.total_leaves
        assert report.total_actual < report.total_forecast

    def test_render_mentions_scope(self, service, simulator):
        crashed = self.drop(values_at(simulator, 1440), service.codes, 0)
        report = service.observe(crashed)
        text = report.render()
        assert "INCIDENT" in text
        assert "(L1, *, *, *)" in text

    def test_render_without_scopes(self):
        report = IncidentReport(
            step=5, total_actual=90.0, total_forecast=100.0, anomalous_leaves=3
        )
        assert "manual triage" in report.render()

    def test_recovery_goes_quiet_again(self, service, simulator):
        step = 1440
        crashed = self.drop(values_at(simulator, step), service.codes, 2)
        assert service.observe(crashed) is not None
        # Next interval traffic is back to normal.
        step += SAMPLE_EVERY
        assert service.observe(values_at(simulator, step)) is None


class TestPluggability:
    def test_custom_localizer_used(self, simulator):
        class StubLocalizer:
            name = "stub"

            def localize(self, dataset, k=None):
                return [AttributeCombination.parse("(L1, *, *, *)")]

        svc = LocalizationService(
            schema=simulator.schema,
            codes=simulator.snapshot(0).codes,
            forecaster=SeasonalNaiveForecaster(period=PERIOD),
            alarm=DeviationAlarm(threshold=0.01),
            localizer=StubLocalizer(),
            history_capacity=PERIOD,
            min_history=1,
        )
        svc.warm_up(values_at(simulator, 0)[None, :])
        report = svc.observe(values_at(simulator, 30) * 0.5)
        assert report is not None
        assert report.patterns == [AttributeCombination.parse("(L1, *, *, *)")]

    def test_max_scopes_bounds_report(self, service, simulator):
        values = values_at(simulator, 1440)
        crashed = values * 0.1  # everything collapses
        service.max_scopes = 2
        report = service.observe(crashed)
        assert report is not None
        assert len(report.scopes) <= 2

    def test_invalid_min_history(self, simulator):
        with pytest.raises(ValueError):
            LocalizationService(
                schema=simulator.schema,
                codes=simulator.snapshot(0).codes,
                min_history=0,
            )

class TestDropFraction:
    def scope(self, actual, forecast):
        return ScopeImpact(
            pattern=AttributeCombination.parse("(L1, *, *, *)"),
            actual=actual,
            forecast=forecast,
            anomalous_leaves=1,
            total_leaves=2,
        )

    def test_finite_shortfall(self):
        assert self.scope(actual=25.0, forecast=100.0).drop_fraction == pytest.approx(0.75)

    def test_zero_forecast_with_traffic_is_signed_infinite(self):
        # A scope that carried traffic against a zero forecast is infinitely
        # *above* baseline — the old code silently returned 0.0 and the
        # scope rendered as "0% down".
        assert self.scope(actual=50.0, forecast=0.0).drop_fraction == -np.inf

    def test_zero_forecast_zero_actual_is_dead_scope(self):
        assert self.scope(actual=0.0, forecast=0.0).drop_fraction == 0.0

    def test_render_guards_non_finite_drop(self):
        report = IncidentReport(
            step=3,
            total_actual=50.0,
            total_forecast=0.0,
            anomalous_leaves=1,
            scopes=[self.scope(actual=50.0, forecast=0.0)],
        )
        text = report.render()
        assert "above zero forecast" in text
        assert "inf" not in text


class TestServiceTelemetry:
    def test_interval_spans_and_incident_timeline(self, service, simulator):
        from repro import obs
        from repro.obs import report as obs_report

        step = 1440
        quiet = values_at(simulator, step)
        crashed = values_at(simulator, step + SAMPLE_EVERY).copy()
        crashed[service.codes[:, 0] == 2] *= 0.2
        with obs.capture() as collector:
            assert service.observe(quiet) is None
            assert service.observe(crashed) is not None

        intervals = collector.find_spans("service.interval")
        assert [span.attributes["alarmed"] for span in intervals] == [False, True]
        alarmed = intervals[1]
        child_names = [s.name for s in collector.children_of(alarmed)]
        assert child_names[:2] == ["service.forecast", "service.alarm"]
        assert {"service.detect", "service.localize", "service.impact"} <= set(child_names)
        assert collector.metrics.value("service_intervals_total") == 2.0
        assert collector.metrics.value("service_incidents_total") == 1.0

        timeline = obs_report.incident_timeline(collector)
        assert "ALARMED" in timeline
        assert "localize" in timeline
