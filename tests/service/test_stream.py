"""Tests for the stream replay driver and the service's delta composition."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.core.config import RAPMinerConfig
from repro.core.delta import DeltaConfig
from repro.core.incremental import StreamingRAPMiner
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.injection import LocalizationCase, inject_failures, sample_raps
from repro.data.schema import cdn_schema
from repro.service import LocalizationService, replay_stream
from repro.service.stream import StreamReplay, TickRecord

CONFIG = RAPMinerConfig(enable_attribute_deletion=False)
PINNED = DeltaConfig(crossover=0.5)  # timing-independent path choice


@pytest.fixture
def incident_ticks():
    """Five consecutive labelled intervals of one persisted 2-RAP incident."""
    sim = CDNSimulator(cdn_schema(6, 3, 3, 5), CDNSimulatorConfig(seed=31))
    rng = np.random.default_rng(31)
    background = sim.snapshot(100).to_dataset()
    raps = sample_raps(background, 2, rng, min_support=6)
    ticks = []
    for step in range(5):
        snapshot = sim.snapshot(100 + step).to_dataset()
        labelled, __ = inject_failures(snapshot, raps, rng)
        ticks.append(labelled)
    return raps, ticks


class TestReplayStream:
    def test_replays_every_tick_through_one_session(self, incident_ticks):
        __, ticks = incident_ticks
        replay = replay_stream(
            ticks, miner=StreamingRAPMiner(CONFIG, delta=PINNED)
        )
        assert len(replay.ticks) == len(ticks)
        assert replay.ticks[0].path == "cold"
        assert replay.ticks[0].reason == "first_tick"
        assert replay.patched_ticks + replay.cold_ticks == len(ticks)
        assert replay.total_seconds > 0.0
        assert replay.amortized_seconds == pytest.approx(
            replay.total_seconds / len(ticks)
        )

    def test_verify_mode_confirms_bit_identical_candidates(self, incident_ticks):
        __, ticks = incident_ticks
        replay = replay_stream(
            ticks, miner=StreamingRAPMiner(CONFIG, delta=PINNED), verify=True
        )
        assert all(t.verified is True for t in replay.ticks)
        assert replay.mismatches == []

    def test_cases_replay_in_order_with_truth_hits(self, incident_ticks):
        raps, ticks = incident_ticks
        cases = [
            LocalizationCase(case_id=f"t{i}", dataset=d, true_raps=list(raps))
            for i, d in enumerate(ticks)
        ]
        replay = replay_stream(
            cases, miner=StreamingRAPMiner(CONFIG, delta=PINNED)
        )
        assert [t.case_id for t in replay.ticks] == [c.case_id for c in cases]
        # k defaults to the truth size; the persisted incident is found.
        assert all(t.hits == len(raps) for t in replay.ticks)

    def test_empty_stream(self):
        replay = replay_stream([])
        assert replay.ticks == []
        assert replay.amortized_seconds == 0.0

    def test_mismatches_lists_failed_ticks(self):
        replay = StreamReplay(
            ticks=[
                TickRecord(0, None, "cold", None, 1.0, 0.1, None, [], verified=True),
                TickRecord(1, None, "patched", None, 0.1, 0.1, None, [], verified=False),
            ]
        )
        assert replay.mismatches == [1]


SAMPLE_EVERY = 30
PERIOD = 1440 // SAMPLE_EVERY


def make_service(simulator, **kwargs):
    svc = LocalizationService(
        schema=simulator.schema,
        codes=simulator.snapshot(0).codes,
        history_capacity=PERIOD,
        min_history=PERIOD,
        **kwargs,
    )
    day = np.stack(
        [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
    )
    svc.warm_up(day)
    return svc


@pytest.fixture
def simulator():
    return CDNSimulator(
        cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=5, noise_sigma=0.02)
    )


def crash_location(values, codes, location_code, factor=0.2):
    out = values.copy()
    out[codes[:, 0] == location_code] *= factor
    return out


class TestServiceDeltaComposition:
    def test_delta_session_on_by_default(self, simulator):
        svc = make_service(simulator)
        assert svc.delta_session is not None

    def test_delta_off_when_disabled(self, simulator):
        svc = make_service(simulator, delta=False)
        assert svc.delta_session is None

    def test_repeated_incident_reports_match_delta_off(self):
        # One fresh same-seed simulator per service: snapshot noise is
        # draw-order-dependent, so a shared instance would hand the two
        # services different warm-up histories.
        def fresh_sim():
            return CDNSimulator(
                cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=5, noise_sigma=0.02)
            )

        with_delta = make_service(fresh_sim(), delta_config=PINNED)
        without = make_service(fresh_sim(), delta=False)
        value_sim = fresh_sim()
        for step in range(1440, 1440 + 4 * SAMPLE_EVERY, SAMPLE_EVERY):
            values = crash_location(
                value_sim.snapshot(step).v, with_delta.codes, 2
            )
            a = with_delta.observe(values)
            b = without.observe(values)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.patterns == b.patterns
                assert a.scopes == b.scopes
        assert with_delta.delta_session.stats.ticks >= 2

    def test_expired_deadline_still_returns_wellformed_report(self, simulator):
        svc = make_service(simulator, deadline_ms=1e-6, delta_config=PINNED)
        values = crash_location(simulator.snapshot(1440).v, svc.codes, 2)
        report = svc.observe(values)
        assert report is not None
        assert isinstance(report.scopes, list)
        assert report.render()  # renders without blowing up
        # The delta tier degraded rather than the interval being dropped.
        assert report.stop_reason == "deadline" or report.degradation_tier is not None


def test_custom_localizer_bypasses_delta(simulator_factory=None):
    sim = CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=5))

    class StubLocalizer:
        name = "stub"

        def localize(self, dataset, k=None):
            return [AttributeCombination.parse("(L1, *, *, *)")]

    svc = LocalizationService(
        schema=sim.schema,
        codes=sim.snapshot(0).codes,
        localizer=StubLocalizer(),
        min_history=1,
        history_capacity=PERIOD,
    )
    svc.warm_up(sim.snapshot(0).v[None, :])
    report = svc.observe(sim.snapshot(30).v * 0.5)
    assert report is not None
    # The stub takes no engine kwarg, so the session never saw a tick.
    assert svc.delta_session is not None
    assert svc.delta_session.stats.ticks == 0
