"""Tests for the rolling history ring buffer."""

import numpy as np
import pytest

from repro.service.history import RollingHistory


class TestRollingHistory:
    def test_starts_empty(self):
        history = RollingHistory(n_series=3, capacity=5)
        assert len(history) == 0
        assert history.last() is None
        assert history.to_matrix().shape == (0, 3)

    def test_append_and_read_back(self):
        history = RollingHistory(2, 4)
        history.append(np.array([1.0, 2.0]))
        history.append(np.array([3.0, 4.0]))
        assert len(history) == 2
        assert history.to_matrix().tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert history.last().tolist() == [3.0, 4.0]

    def test_eviction_keeps_chronological_order(self):
        history = RollingHistory(1, 3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            history.append(np.array([value]))
        assert history.is_full
        assert history.to_matrix().reshape(-1).tolist() == [3.0, 4.0, 5.0]

    def test_wraparound_many_times(self):
        history = RollingHistory(1, 4)
        for value in range(100):
            history.append(np.array([float(value)]))
        assert history.to_matrix().reshape(-1).tolist() == [96.0, 97.0, 98.0, 99.0]
        assert history.last()[0] == 99.0

    def test_shape_mismatch_rejected(self):
        history = RollingHistory(2, 3)
        with pytest.raises(ValueError):
            history.append(np.array([1.0]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RollingHistory(0, 5)
        with pytest.raises(ValueError):
            RollingHistory(3, 0)

    def test_clear(self):
        history = RollingHistory(1, 3)
        history.append(np.array([1.0]))
        history.clear()
        assert len(history) == 0
        assert history.last() is None

    def test_matrix_is_a_copy(self):
        history = RollingHistory(1, 3)
        history.append(np.array([1.0]))
        matrix = history.to_matrix()
        matrix[0, 0] = 99.0
        assert history.last()[0] == 1.0
