"""Tests for the rolling history ring buffer."""

import numpy as np
import pytest

from repro.service.history import RollingHistory


class TestRollingHistory:
    def test_starts_empty(self):
        history = RollingHistory(n_series=3, capacity=5)
        assert len(history) == 0
        assert history.last() is None
        assert history.to_matrix().shape == (0, 3)

    def test_append_and_read_back(self):
        history = RollingHistory(2, 4)
        history.append(np.array([1.0, 2.0]))
        history.append(np.array([3.0, 4.0]))
        assert len(history) == 2
        assert history.to_matrix().tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert history.last().tolist() == [3.0, 4.0]

    def test_eviction_keeps_chronological_order(self):
        history = RollingHistory(1, 3)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            history.append(np.array([value]))
        assert history.is_full
        assert history.to_matrix().reshape(-1).tolist() == [3.0, 4.0, 5.0]

    def test_wraparound_many_times(self):
        history = RollingHistory(1, 4)
        for value in range(100):
            history.append(np.array([float(value)]))
        assert history.to_matrix().reshape(-1).tolist() == [96.0, 97.0, 98.0, 99.0]
        assert history.last()[0] == 99.0

    def test_shape_mismatch_rejected(self):
        history = RollingHistory(2, 3)
        with pytest.raises(ValueError):
            history.append(np.array([1.0]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RollingHistory(0, 5)
        with pytest.raises(ValueError):
            RollingHistory(3, 0)

    def test_clear(self):
        history = RollingHistory(1, 3)
        history.append(np.array([1.0]))
        history.clear()
        assert len(history) == 0
        assert history.last() is None

    def test_matrix_is_a_copy(self):
        history = RollingHistory(1, 3)
        history.append(np.array([1.0]))
        matrix = history.to_matrix()
        matrix[0, 0] = 99.0
        assert history.last()[0] == 1.0


class TestWraparound:
    def _filled(self, capacity, steps, n_series=2):
        history = RollingHistory(n_series=n_series, capacity=capacity)
        for step in range(steps):
            history.append(np.full(n_series, float(step)))
        return history

    def test_to_matrix_chronological_after_wrap(self):
        history = self._filled(capacity=3, steps=5)
        matrix = history.to_matrix()
        assert matrix.shape == (3, 2)
        np.testing.assert_array_equal(matrix[:, 0], [2.0, 3.0, 4.0])

    def test_to_matrix_at_exact_boundary(self):
        # size == capacity with _next back at 0: the wrap concat must not
        # duplicate or reorder rows.
        history = self._filled(capacity=3, steps=3)
        np.testing.assert_array_equal(history.to_matrix()[:, 0], [0.0, 1.0, 2.0])

    def test_last_tracks_every_wrap_position(self):
        history = RollingHistory(n_series=1, capacity=3)
        for step in range(7):
            history.append([float(step)])
            assert history.last() == np.array([float(step)])

    def test_len_saturates_at_capacity(self):
        history = self._filled(capacity=3, steps=10)
        assert len(history) == 3
        assert history.is_full

    def test_clear_then_reuse(self):
        history = self._filled(capacity=3, steps=5)
        history.clear()
        assert len(history) == 0
        assert history.last() is None
        assert history.to_matrix().shape == (0, 2)
        # Appends after clear() restart from slot 0, not the old _next.
        history.append([10.0, 11.0])
        history.append([20.0, 21.0])
        matrix = history.to_matrix()
        np.testing.assert_array_equal(matrix[:, 0], [10.0, 20.0])
        np.testing.assert_array_equal(history.last(), [20.0, 21.0])

    def test_partial_fill_mid_wrap(self):
        # Wrap once, clear, then fill fewer than capacity steps: the
        # short-size path of to_matrix() must read from the buffer start.
        history = self._filled(capacity=4, steps=6)
        history.clear()
        history.append([1.0, 1.0])
        history.append([2.0, 2.0])
        history.append([3.0, 3.0])
        np.testing.assert_array_equal(history.to_matrix()[:, 0], [1.0, 2.0, 3.0])
        assert not history.is_full
