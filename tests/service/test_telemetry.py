"""Service-side wiring of the live telemetry plane.

``LocalizationService.telemetry_server()`` hands back a server whose
``/readyz`` reflects warm-up and breaker state, and ``observe`` exports
the ``resilience_*`` gauges plus per-interval SLO outcomes — these tests
drive the whole loop over real HTTP against an ephemeral port.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.obs.slo import SLOObjective, SLOTracker
from repro.resilience.breaker import BREAKER_STATE_VALUES, CircuitBreaker
from repro.service import LocalizationService

SAMPLE_EVERY = 30
PERIOD = 1440 // SAMPLE_EVERY


class FakeClock:
    """Manually advanced monotonic clock for deterministic breaker cool-downs."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


@pytest.fixture
def simulator():
    return CDNSimulator(
        cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=5, noise_sigma=0.02)
    )


def make_service(simulator, warm=True, **kwargs):
    svc = LocalizationService(
        schema=simulator.schema,
        codes=simulator.snapshot(0).codes,
        history_capacity=PERIOD,
        min_history=PERIOD,
        **kwargs,
    )
    if warm:
        day = np.stack(
            [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
        )
        svc.warm_up(day)
    return svc


def crash_location(values, codes, location_code, factor=0.2):
    out = values.copy()
    out[codes[:, 0] == location_code] *= factor
    return out


class TestServiceTelemetry:
    def test_readyz_tracks_warmup_and_breakers(self, simulator):
        svc = make_service(simulator, warm=False)
        with svc.telemetry_server() as server:
            status, body = get(f"{server.url}/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["ready"] is False
            assert payload["reason"].startswith("history 0/")

            day = np.stack(
                [simulator.snapshot(s).v for s in range(0, 1440, SAMPLE_EVERY)]
            )
            svc.warm_up(day)
            status, body = get(f"{server.url}/readyz")
            payload = json.loads(body)
            assert status == 200
            assert payload["ready"] is True
            assert payload["breakers"] == {"forecast": "closed", "detect": "closed"}

            # Trip a breaker: readiness goes false and names the culprit.
            svc.forecast_breaker = CircuitBreaker(
                name="forecast", failure_threshold=1, clock=FakeClock()
            )
            svc.forecast_breaker.record_failure()
            status, body = get(f"{server.url}/readyz")
            payload = json.loads(body)
            assert status == 503
            assert payload["reason"] == "open breakers: forecast"

    def test_observe_exports_resilience_gauges(self, simulator):
        svc = make_service(simulator)
        with obs.capture() as collector:
            values = crash_location(simulator.snapshot(1440).v, svc.codes, 2)
            report = svc.observe(values)
            assert report is not None
            with svc.telemetry_server() as server:
                status, body = get(f"{server.url}/metrics")
        text = body.decode()
        assert status == 200
        assert 'resilience_breaker_state{breaker="forecast"} 0' in text
        assert 'resilience_breaker_state{breaker="detect"} 0' in text
        gauges = {
            m.labels["breaker"]: m.value
            for m in collector.metrics.collect()
            if m.name == "resilience_breaker_state"
        }
        assert gauges == {
            "forecast": BREAKER_STATE_VALUES["closed"],
            "detect": BREAKER_STATE_VALUES["closed"],
        }

    def test_breaker_transition_moves_the_gauge(self):
        clock = FakeClock()
        breaker = CircuitBreaker(name="probe", failure_threshold=1, clock=clock)
        with obs.capture() as collector:
            breaker.record_failure()

            def state_gauge():
                return next(
                    m.value
                    for m in collector.metrics.collect()
                    if m.name == "resilience_breaker_state"
                    and m.labels["breaker"] == "probe"
                )

            assert state_gauge() == BREAKER_STATE_VALUES["open"]
            clock.now += breaker.recovery_time + 1.0
            assert breaker.allow() is True  # probe trial -> half-open
            assert state_gauge() == BREAKER_STATE_VALUES["half_open"]
            breaker.record_success()
            assert state_gauge() == BREAKER_STATE_VALUES["closed"]

    def test_service_feeds_slo_tracker_per_interval(self, simulator):
        tracker = SLOTracker(
            objectives=[SLOObjective("interval_success", target=0.9)],
            windows=(4,),
        )
        svc = make_service(simulator, slo=tracker)
        with obs.capture() as collector:
            for step in range(1440, 1440 + 3 * SAMPLE_EVERY, SAMPLE_EVERY):
                svc.observe(simulator.snapshot(step).v)
        assert tracker.ticks_recorded == 3
        counters = {
            m.labels["outcome"]: m.value
            for m in collector.metrics.collect()
            if m.name == "slo_ticks_total"
        }
        assert counters["good"] + counters["bad"] == 3
        assert any(
            m.name == "slo_burn_rate" and m.labels["window"] == "4"
            for m in collector.metrics.collect()
        )

    def test_slo_tracker_runs_without_collector(self, simulator):
        # Off path: no capture installed — windows update, export no-ops.
        tracker = SLOTracker(windows=(4,))
        svc = make_service(simulator, slo=tracker)
        assert not obs.is_active()
        svc.observe(simulator.snapshot(1440).v)
        assert tracker.ticks_recorded == 1
