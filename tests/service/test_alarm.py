"""Tests for overall-KPI alarms."""

import numpy as np
import pytest

from repro.service.alarm import DeviationAlarm, ResidualSigmaAlarm


class TestDeviationAlarm:
    def test_triggers_on_drop(self):
        alarm = DeviationAlarm(threshold=0.05)
        assert alarm.should_trigger(actual_total=90.0, forecast_total=100.0)

    def test_quiet_within_threshold(self):
        alarm = DeviationAlarm(threshold=0.05)
        assert not alarm.should_trigger(actual_total=97.0, forecast_total=100.0)

    def test_one_sided_ignores_surges(self):
        alarm = DeviationAlarm(threshold=0.05, two_sided=False)
        assert not alarm.should_trigger(actual_total=150.0, forecast_total=100.0)

    def test_two_sided_catches_surges(self):
        alarm = DeviationAlarm(threshold=0.05, two_sided=True)
        assert alarm.should_trigger(actual_total=150.0, forecast_total=100.0)

    def test_zero_forecast_guarded(self):
        alarm = DeviationAlarm(threshold=0.05)
        assert not alarm.should_trigger(actual_total=0.0, forecast_total=0.0)


class TestResidualSigmaAlarm:
    def feed_normal(self, alarm, n=50, noise=0.005, seed=0):
        rng = np.random.default_rng(seed)
        for __ in range(n):
            actual = 100.0 * (1.0 + rng.normal(0.0, noise))
            assert not alarm.should_trigger(actual, 100.0)

    def test_quiet_during_calibration(self):
        alarm = ResidualSigmaAlarm(min_history=10)
        for __ in range(9):
            assert not alarm.should_trigger(50.0, 100.0)  # even a huge drop

    def test_triggers_on_outlier_after_calibration(self):
        alarm = ResidualSigmaAlarm(k=4.0, min_history=10)
        self.feed_normal(alarm)
        assert alarm.should_trigger(actual_total=80.0, forecast_total=100.0)

    def test_stays_quiet_on_normal_noise(self):
        alarm = ResidualSigmaAlarm(k=5.0, min_history=10)
        self.feed_normal(alarm, n=100)

    def test_incident_does_not_recalibrate(self):
        """A persistent outage keeps triggering: anomalous residuals are
        excluded from the calibration window."""
        alarm = ResidualSigmaAlarm(k=4.0, min_history=10)
        self.feed_normal(alarm)
        for __ in range(30):
            assert alarm.should_trigger(actual_total=80.0, forecast_total=100.0)

    def test_window_bounds_memory(self):
        alarm = ResidualSigmaAlarm(window=20, min_history=5)
        self.feed_normal(alarm, n=100)
        assert len(alarm._residuals) <= 20
