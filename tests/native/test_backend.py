"""Backend registry behaviour: selection, fallback, cache hygiene.

The native backend must never make the toolkit worse: a host without a
compiler degrades to numpy with exactly one :class:`RuntimeWarning` and
a labelled fallback counter, a corrupt cached library is rebuilt rather
than loaded, and every selection surface (config knob, environment
variable, explicit resolve) lands on a backend whose results the
equivalence suite pins bitwise to the reference.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import obs
from repro.core.config import RAPMinerConfig
from repro.core.stacked import stacked_key_dtype
from repro.native import (
    FALLBACK_EVENTS,
    KernelBackend,
    NativeBuildError,
    NumpyBackend,
    backend_info,
    coerce_backend,
    find_compiler,
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.native import backend as backend_module
from repro.native import build as build_module
from repro.native.backend import _stacked_key_dtype


@pytest.fixture(autouse=True)
def registry_reset():
    """Each test sees (and leaves behind) a fresh registry."""
    backend_module._reset_registry_for_tests()
    yield
    backend_module._reset_registry_for_tests()


def _break_compiler(monkeypatch):
    """Point compiler discovery at nothing so native resolution must fail."""
    monkeypatch.setenv("RAPMINER_CC", "/nonexistent/definitely-not-a-compiler")
    # A previously cached library would satisfy load_library() without a
    # compiler only if the compiler identity were known; with discovery
    # broken the loader raises before touching the cache.
    assert find_compiler() is None


# -- selection ---------------------------------------------------------------


def test_numpy_resolution_is_the_reference_instance():
    backend = resolve_backend("numpy")
    assert isinstance(backend, NumpyBackend)
    assert backend.name == "numpy"
    assert backend.info() == {"backend": "numpy"}


def test_env_var_drives_the_default(monkeypatch):
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    assert get_default_backend().name == "numpy"


def test_env_var_rejects_unknown_names(monkeypatch):
    monkeypatch.setenv("RAPMINER_BACKEND", "fortran")
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend(None)


def test_set_default_backend_pins_and_unpins(monkeypatch):
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    pinned = set_default_backend("numpy")
    assert get_default_backend() is pinned
    # ``None`` re-reads the environment rather than keeping the pin.
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    assert set_default_backend(None).name == "numpy"


def test_coerce_backend_accepts_instances_names_and_none(monkeypatch):
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    instance = NumpyBackend()
    assert coerce_backend(instance) is instance
    assert coerce_backend("numpy").name == "numpy"
    assert isinstance(coerce_backend(None), KernelBackend)


def test_config_validates_backend_names():
    assert RAPMinerConfig(backend="numpy").backend == "numpy"
    assert RAPMinerConfig(backend=None).backend is None
    with pytest.raises(ValueError, match="backend must be one of"):
        RAPMinerConfig(backend="fortran")


def test_backend_info_reports_identity(monkeypatch):
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    assert backend_info()["backend"] == "numpy"


# -- graceful degradation ----------------------------------------------------


def test_no_compiler_falls_back_with_one_warning_and_a_counter(monkeypatch):
    _break_compiler(monkeypatch)
    with obs.capture() as collector:
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            backend = resolve_backend("native")
        assert backend.name == "numpy"
        assert ("native", "no_compiler") in FALLBACK_EVENTS
        # The second resolution degrades silently: the counter still
        # moves, the process-wide warning does not repeat.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto").name == "numpy"
    assert collector.metrics.value(
        "engine_backend_fallback_total", {"reason": "no_compiler"}
    ) == 2.0


def test_auto_spec_degrades_without_raising(monkeypatch):
    _break_compiler(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert resolve_backend("auto").name == "numpy"
        assert get_default_backend().name == "numpy"


def test_strict_resolution_propagates_the_build_error(monkeypatch):
    _break_compiler(monkeypatch)
    with pytest.raises(NativeBuildError) as excinfo:
        resolve_backend("native", strict=True)
    assert excinfo.value.reason == "no_compiler"


def test_numpy_spec_never_warns_without_a_compiler(monkeypatch):
    _break_compiler(monkeypatch)
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert get_default_backend().name == "numpy"
    assert FALLBACK_EVENTS == []


# -- build cache -------------------------------------------------------------


def test_corrupt_cached_library_is_rebuilt(tmp_path, monkeypatch):
    compiler = find_compiler()
    if compiler is None:
        pytest.skip("host has no C compiler")
    monkeypatch.setenv("RAPMINER_NATIVE_CACHE", str(tmp_path))
    target = build_module.library_path(
        compiler, build_module.compiler_version(compiler)
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_bytes(b"this is not a shared library")
    backend = resolve_backend("native", strict=True)
    assert backend.name == "native"
    assert backend.info()["compile_seconds"] > 0.0  # rebuilt, not loaded
    keys = np.array([0, 2, 2, 1], dtype=np.int64)
    assert np.array_equal(
        backend.count_bincount(keys, 4), np.array([1, 1, 2, 0])
    )


def test_cache_hit_skips_the_compiler(tmp_path, monkeypatch):
    compiler = find_compiler()
    if compiler is None:
        pytest.skip("host has no C compiler")
    monkeypatch.setenv("RAPMINER_NATIVE_CACHE", str(tmp_path))
    first = resolve_backend("native", strict=True)
    assert first.info()["compile_seconds"] > 0.0
    backend_module._reset_registry_for_tests()
    second = resolve_backend("native", strict=True)
    assert second.info()["compile_seconds"] == 0.0


# -- contracts shared with the core ------------------------------------------


def test_stacked_key_dtype_mirror_matches_core():
    for n_slots, capacity in [
        (0, 0),
        (1, 1),
        (3, 1000),
        (480, 5280),
        (2, 2**31),
        (2**20, 2**20),
    ]:
        assert _stacked_key_dtype(n_slots, capacity) == stacked_key_dtype(
            n_slots, capacity
        ), (n_slots, capacity)


def test_engine_emits_backend_gauge(monkeypatch, four_attr_schema):
    monkeypatch.setenv("RAPMINER_BACKEND", "numpy")
    from repro.core.engine import AggregationEngine
    from repro.data.dataset import FineGrainedDataset

    rng = np.random.default_rng(3)
    codes = np.stack(
        [rng.integers(0, s, size=32) for s in four_attr_schema.sizes], axis=1
    ).astype(np.int64)
    dataset = FineGrainedDataset(
        four_attr_schema,
        codes,
        rng.random(32),
        rng.random(32),
        rng.random(32) < 0.25,
    )
    with obs.capture() as collector:
        engine = AggregationEngine(dataset)
        assert engine.backend.name == "numpy"
    assert collector.metrics.value(
        "engine_backend_info", {"backend": "numpy"}
    ) == 1.0
