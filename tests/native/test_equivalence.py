"""Bitwise equivalence: native C kernels vs the numpy reference backend.

The native backend's whole contract is that switching it on changes
*nothing* but wall time: every kernel output, every CP value, every
attribute-deletion decision, every ranked candidate and every streamed
delta tick must be bitwise identical to the numpy reference.  These
tests pin that contract over a randomized schema grid plus the dtype
and degenerate boundaries (unsigned key promotion, empty layers,
all-anomalous labels) where a C implementation could silently diverge.

Skipped wholesale on hosts that cannot build the library — the
registry-level fallback behaviour is covered in ``test_backend.py``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.classification_power import (
    classification_power,
    delete_redundant_attributes,
)
from repro.core.config import RAPMinerConfig
from repro.core.engine import engine_for
from repro.core.incremental import StreamingRAPMiner
from repro.core.miner import RAPMiner
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import schema_from_sizes
from repro.native import NumpyBackend, resolve_backend

#: (sizes, n_rows) grid the randomized checks draw from.
GRID = [
    ((3, 2, 2), 40),
    ((4, 3, 3, 2), 150),
    ((5, 2), 17),
    ((6, 5, 4, 3), 400),
]

reference = NumpyBackend()


@pytest.fixture(scope="module")
def native():
    try:
        return resolve_backend("native", strict=True)
    except Exception as exc:
        pytest.skip(f"native backend unavailable on this host: {exc}")


def _full_lattice_plans(sizes):
    """Stride matrix + offsets covering every cuboid (engine plan shape)."""
    n_attrs = len(sizes)
    stride_rows, offsets = [], [0]
    for layer in range(1, n_attrs + 1):
        for subset in itertools.combinations(range(n_attrs), layer):
            strides = [0] * n_attrs
            stride = 1
            for attr in reversed(subset):
                strides[attr] = stride
                stride *= sizes[attr]
            stride_rows.append(strides)
            offsets.append(offsets[-1] + stride)
    matrix = np.ascontiguousarray(np.array(stride_rows, dtype=np.int64).T)
    return matrix, np.array(offsets[:-1], dtype=np.int64), offsets[-1]


def _random_dataset(rng, sizes, n_rows, label_p=0.2):
    schema = schema_from_sizes(list(sizes))
    codes = np.stack(
        [rng.integers(0, size, size=n_rows) for size in sizes], axis=1
    ).astype(np.int64)
    labels = rng.random(n_rows) < label_p
    return FineGrainedDataset(
        schema, codes, rng.random(n_rows), rng.random(n_rows), labels
    )


def _fresh_copy(dataset):
    """Fresh dataset object over the same buffers (no cached engine)."""
    return FineGrainedDataset(
        dataset.schema, dataset.codes, dataset.v, dataset.f, dataset.labels
    )


def _assert_lanes_equal(kernel, numpy_out, native_out):
    numpy_list = numpy_out if isinstance(numpy_out, (tuple, list)) else [numpy_out]
    native_list = native_out if isinstance(native_out, (tuple, list)) else [native_out]
    assert len(numpy_list) == len(native_list)
    for lane, (a, b) in enumerate(zip(numpy_list, native_list)):
        if a is None or b is None:
            assert a is None and b is None, f"{kernel} lane {lane}: one None"
            continue
        a, b = np.asarray(a), np.asarray(b)
        assert a.dtype == b.dtype, f"{kernel} lane {lane}: dtype diverged"
        assert np.array_equal(a, b), f"{kernel} lane {lane}: bitwise diverged"


# -- kernel-level grid -------------------------------------------------------


@pytest.mark.parametrize("sizes,n_rows", GRID)
@pytest.mark.parametrize("seed", [0, 7])
def test_kernel_grid_bitwise(native, sizes, n_rows, seed):
    rng = np.random.default_rng(seed)
    dataset = _random_dataset(rng, sizes, n_rows)
    codes, v, f = dataset.codes, dataset.v, dataset.f
    label_rows = np.flatnonzero(dataset.labels)
    matrix, offsets, total = _full_lattice_plans(sizes)
    capacity = int(np.prod(sizes))
    keys = np.ascontiguousarray(codes @ matrix[:, -1])

    for kernel, args in {
        "fused_batch": (codes, matrix, offsets, total, label_rows, v, f),
        "fused_bincount": (keys, (v, f, v + f, v * f), capacity),
        "count_bincount": (keys, capacity),
        "weighted_bincount": (keys, f, capacity),
        "stacked_anomalous": (
            [np.ascontiguousarray(codes[:, a]) for a in range(len(sizes))],
            np.cumsum([0] + list(sizes[:-1])).tolist(),
            int(sum(sizes)),
            np.concatenate([label_rows] * 3),
            [label_rows.size] * 3,
        ),
        "stacked_weighted": (keys, capacity, [[v, f, v], [f, v, f]]),
    }.items():
        _assert_lanes_equal(
            kernel, getattr(reference, kernel)(*args), getattr(native, kernel)(*args)
        )

    changed = rng.random(n_rows) < 0.3
    gained = dataset.labels & changed
    lost = ~dataset.labels & changed
    delta_args = (codes, matrix, offsets, total, gained, lost, v - f, f - v)
    _assert_lanes_equal(
        "delta_patch", reference.delta_patch(*delta_args), native.delta_patch(*delta_args)
    )


# -- dtype and degenerate boundaries -----------------------------------------


def test_unsigned_and_narrow_keys_promote_identically(native):
    rng = np.random.default_rng(11)
    for dtype in (np.uint32, np.int32, np.uint16):
        keys = rng.integers(0, 50, size=200).astype(dtype)
        weights = rng.random(200)
        _assert_lanes_equal(
            f"count[{dtype}]",
            reference.count_bincount(keys, 50),
            native.count_bincount(keys, 50),
        )
        _assert_lanes_equal(
            f"weighted[{dtype}]",
            reference.weighted_bincount(keys, weights, 50),
            native.weighted_bincount(keys, weights, 50),
        )


def test_empty_rows_and_empty_cases(native):
    empty_keys = np.zeros(0, dtype=np.int64)
    empty_w = np.zeros(0)
    _assert_lanes_equal(
        "count[empty]",
        reference.count_bincount(empty_keys, 6),
        native.count_bincount(empty_keys, 6),
    )
    _assert_lanes_equal(
        "weighted[empty]",
        reference.weighted_bincount(empty_keys, empty_w, 6),
        native.weighted_bincount(empty_keys, empty_w, 6),
    )
    # A stacked batch where one case contributes zero anomalous rows.
    keys = np.array([0, 1, 2, 1], dtype=np.int64)
    rows_cat = np.array([0, 3], dtype=np.int64)
    args = ([keys], [0], 3, rows_cat, [2, 0])
    _assert_lanes_equal(
        "stacked_anomalous[empty case]",
        reference.stacked_anomalous(*args),
        native.stacked_anomalous(*args),
    )


def test_all_anomalous_labels(native):
    rng = np.random.default_rng(23)
    dataset = _random_dataset(rng, (4, 3, 3, 2), 120, label_p=1.1)
    assert bool(dataset.labels.all())
    matrix, offsets, total = _full_lattice_plans((4, 3, 3, 2))
    args = (
        dataset.codes,
        matrix,
        offsets,
        total,
        np.flatnonzero(dataset.labels),
        dataset.v,
        dataset.f,
    )
    _assert_lanes_equal(
        "fused_batch[all anomalous]",
        reference.fused_batch(*args),
        native.fused_batch(*args),
    )
    # CP is 0 for every attribute (Info(D) = 0): both backends must agree.
    for index in range(dataset.schema.n_attributes):
        assert classification_power(
            _fresh_copy(dataset), index
        ) == classification_power(_fresh_copy(dataset), index)


# -- pipeline-level equivalence ----------------------------------------------


@pytest.mark.parametrize("sizes,n_rows", GRID)
def test_cp_and_deletion_bitwise(native, sizes, n_rows):
    rng = np.random.default_rng(31)
    base = _random_dataset(rng, sizes, n_rows)
    on_numpy = _fresh_copy(base)
    on_native = _fresh_copy(base)
    engine_for(on_numpy, backend="numpy")
    engine_for(on_native, backend=native)
    for index in range(base.schema.n_attributes):
        cp_numpy = classification_power(on_numpy, index)
        cp_native = classification_power(on_native, index)
        assert cp_numpy == cp_native, f"CP[{index}] diverged"
    del_numpy = delete_redundant_attributes(on_numpy, 0.005)
    del_native = delete_redundant_attributes(on_native, 0.005)
    assert del_numpy.kept_indices == del_native.kept_indices
    assert del_numpy.deleted_indices == del_native.deleted_indices
    assert del_numpy.cp_values == del_native.cp_values


def _candidate_key(candidate):
    return (
        candidate.combination,
        candidate.confidence,
        candidate.support,
        candidate.score,
    )


@pytest.mark.parametrize("sizes,n_rows", GRID)
def test_end_to_end_candidates_bitwise(native, sizes, n_rows):
    rng = np.random.default_rng(43)
    base = [_random_dataset(rng, sizes, n_rows, label_p=0.15) for _ in range(4)]
    numpy_miner = RAPMiner(RAPMinerConfig(backend="numpy"))
    native_miner = RAPMiner(RAPMinerConfig(backend="native"))
    serial_numpy = [numpy_miner.run(_fresh_copy(d)) for d in base]
    serial_native = [native_miner.run(_fresh_copy(d)) for d in base]
    batch_native = native_miner.run_batch([_fresh_copy(d) for d in base])
    for got_serial, got_batch, want in zip(serial_native, batch_native, serial_numpy):
        want_keys = [_candidate_key(c) for c in want.candidates]
        assert [_candidate_key(c) for c in got_serial.candidates] == want_keys
        assert [_candidate_key(c) for c in got_batch.candidates] == want_keys


def test_streaming_delta_ticks_bitwise(native):
    rng = np.random.default_rng(53)
    sizes, n_rows = (4, 3, 3, 2), 150
    base = _random_dataset(rng, sizes, n_rows, label_p=0.15)
    # Three ticks: the base snapshot, then two small forecast perturbations
    # on a fixed 10% of rows (stable layout, low changed fraction — the
    # delta path's home turf).
    changed = rng.random(n_rows) < 0.1
    ticks = [base]
    for __ in range(2):
        previous = ticks[-1]
        f = previous.f.copy()
        f[changed] += rng.random(int(changed.sum())) * 0.1
        ticks.append(
            FineGrainedDataset(base.schema, base.codes, base.v, f, base.labels)
        )
    streams = {}
    for backend_name in ("numpy", "native"):
        miner = StreamingRAPMiner(config=RAPMinerConfig(backend=backend_name))
        streams[backend_name] = [
            [_candidate_key(c) for c in miner.run(_fresh_copy(tick)).candidates]
            for tick in ticks
        ]
    assert streams["numpy"] == streams["native"]
