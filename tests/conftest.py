"""Shared fixtures: small schemas and hand-checkable labelled datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination, AttributeSchema
from repro.data.dataset import FineGrainedDataset
from repro.data.schema import paper_example_schema, schema_from_sizes


@pytest.fixture
def example_schema() -> AttributeSchema:
    """The paper's (3, 2, 2) worked-example schema (Fig. 6 / Table V)."""
    return paper_example_schema()


@pytest.fixture
def tiny_schema() -> AttributeSchema:
    """2 attributes x (2, 2): small enough to enumerate everything by hand."""
    return schema_from_sizes([2, 2])


@pytest.fixture
def four_attr_schema() -> AttributeSchema:
    """4 attributes x (4, 3, 3, 2) = 72 leaves, used for brute-force checks."""
    return schema_from_sizes([4, 3, 3, 2])


def make_labelled_dataset(
    schema: AttributeSchema,
    anomalous: list,
    v_value: float = 100.0,
    seed: int = 0,
) -> FineGrainedDataset:
    """Full leaf table where leaves under any pattern in *anomalous* are flagged.

    Values are constant (plus a deterministic jitter) so tests exercise the
    label-driven code paths without incidental numeric noise; forecasts of
    anomalous leaves are inflated so deviation-based methods also see them.
    """
    rng = np.random.default_rng(seed)
    n = schema.n_leaves
    v = np.full(n, v_value) + rng.uniform(0.0, 1.0, n)
    dataset = FineGrainedDataset.full(schema, v, v.copy())
    labels = np.zeros(n, dtype=bool)
    for pattern in anomalous:
        if isinstance(pattern, str):
            pattern = AttributeCombination.parse(pattern)
        labels |= dataset.mask_of(pattern)
    f = dataset.f.copy()
    f[labels] = dataset.v[labels] / 0.6  # Dev = 0.4 for anomalous leaves
    return FineGrainedDataset(schema, dataset.codes, dataset.v, f, labels)


@pytest.fixture
def example_dataset(example_schema) -> FineGrainedDataset:
    """Fig. 6 scenario: ``(a1, *, *)`` is the only RAP."""
    return make_labelled_dataset(example_schema, ["(a1, *, *)"])


@pytest.fixture
def fig7_dataset(example_schema) -> FineGrainedDataset:
    """Fig. 7 scenario: RAPs are ``(a1, *, *)`` and ``(a2, b2, *)``."""
    return make_labelled_dataset(example_schema, ["(a1, *, *)", "(a2, b2, *)"])
