"""Tests for the experiment presets and method cohort factories."""

import pytest

from repro.core.miner import RAPMiner
from repro.experiments.presets import all_methods, fast_preset, paper_methods, paper_preset


class TestPresets:
    def test_fast_preset_generates_quickly(self):
        preset = fast_preset(seed=5)
        squeeze = preset.squeeze_cases()
        rapmd = preset.rapmd_cases()
        assert len(squeeze) == 9 * 4
        assert len(rapmd) == 15
        assert rapmd[0].dataset.n_rows < 2000  # genuinely small

    def test_paper_preset_scales(self):
        preset = paper_preset(seed=5)
        assert preset.rapmd_config.n_cases == 105
        assert preset.rapmd_config.n_days == 35
        assert preset.squeeze_config.cases_per_group == 25
        assert preset.rapmd_schema().n_leaves == 10560

    def test_presets_deterministic(self):
        a = fast_preset(seed=7).rapmd_cases()
        b = fast_preset(seed=7).rapmd_cases()
        assert [c.true_raps for c in a] == [c.true_raps for c in b]

    def test_seeds_differ(self):
        a = fast_preset(seed=1).rapmd_cases()
        b = fast_preset(seed=2).rapmd_cases()
        assert [c.true_raps for c in a] != [c.true_raps for c in b]


class TestMethodFactories:
    def test_paper_cohort_order_and_names(self):
        names = [m.name for m in paper_methods()]
        assert names == ["RAPMiner", "Squeeze", "FP-growth", "Adtributor", "iDice"]

    def test_all_methods_adds_extensions(self):
        names = [m.name for m in all_methods()]
        assert names[5:] == ["HotSpot", "R-Adtributor"]
        assert len(names) == 7

    def test_rapminer_config_injection(self):
        from repro.core.config import RAPMinerConfig

        config = RAPMinerConfig(t_conf=0.66)
        methods = paper_methods(config)
        assert isinstance(methods[0], RAPMiner)
        assert methods[0].config.t_conf == 0.66

    def test_factories_return_fresh_instances(self):
        assert paper_methods()[0] is not paper_methods()[0]
