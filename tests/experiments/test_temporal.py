"""Tests for the operational (service-over-trace) evaluation."""

import numpy as np
import pytest

from repro.core.attribute import AttributeCombination
from repro.data.cdn_simulator import CDNSimulator, CDNSimulatorConfig
from repro.data.schema import cdn_schema
from repro.data.trace import Incident, IncidentSchedule
from repro.detection.detectors import DeviationThresholdDetector
from repro.detection.forecasting import SeasonalNaiveForecaster
from repro.experiments.temporal import TemporalEvaluation, evaluate_service
from repro.service.alarm import DeviationAlarm
from repro.service.pipeline import LocalizationService

SAMPLE_EVERY = 30
PERIOD = 1440 // SAMPLE_EVERY


def ac(text):
    return AttributeCombination.parse(text)


@pytest.fixture
def simulator():
    return CDNSimulator(cdn_schema(6, 2, 2, 5), CDNSimulatorConfig(seed=83, noise_sigma=0.02))


@pytest.fixture
def warm_service(simulator):
    service = LocalizationService(
        schema=simulator.schema,
        codes=simulator.snapshot(0).codes,
        forecaster=SeasonalNaiveForecaster(period=PERIOD),
        detector=DeviationThresholdDetector(threshold=0.3),
        alarm=DeviationAlarm(threshold=0.04),
        history_capacity=PERIOD,
        min_history=PERIOD,
    )
    warmup = np.stack(
        [simulator.snapshot(step).v for step in range(0, 1440, SAMPLE_EVERY)]
    )
    service.warm_up(warmup)
    return service


def heavy_location(simulator):
    values = simulator.snapshot(0).v
    codes = simulator.snapshot(0).codes
    shares = [values[codes[:, 0] == c].sum() for c in range(6)]
    return f"(L{int(np.argmax(shares)) + 1}, *, *, *)"


class TestEvaluateService:
    def test_quiet_trace_is_quiet(self, warm_service, simulator):
        evaluation = evaluate_service(
            warm_service, simulator, IncidentSchedule(), 10,
            sample_every=SAMPLE_EVERY, start_minute=1440,
        )
        assert evaluation.reports == {}
        assert evaluation.false_alarm_rate == 0.0
        assert evaluation.detection_rate == 1.0  # vacuous
        assert evaluation.mean_detection_delay is None

    def test_incident_detected_and_localized(self, warm_service, simulator):
        pattern = ac(heavy_location(simulator))
        schedule = IncidentSchedule([Incident(pattern, 4, 6, retain_fraction=0.1)])
        evaluation = evaluate_service(
            warm_service, simulator, schedule, 10,
            sample_every=SAMPLE_EVERY, start_minute=1440,
        )
        assert evaluation.detection_rate == 1.0
        assert evaluation.detection_delays[0] == 0  # alarmed at onset
        assert evaluation.localization_accuracy(k=3) == 1.0
        assert 4 in evaluation.reports

    def test_false_alarms_counted_separately(self, simulator):
        """A hair-trigger alarm on a noisy trace produces false alarms."""
        service = LocalizationService(
            schema=simulator.schema,
            codes=simulator.snapshot(0).codes,
            forecaster=SeasonalNaiveForecaster(period=PERIOD),
            alarm=DeviationAlarm(threshold=0.0001, two_sided=True),
            history_capacity=PERIOD,
            min_history=1,
        )
        service.warm_up(simulator.snapshot(0).v[None, :])
        evaluation = evaluate_service(
            service, simulator, IncidentSchedule(), 5,
            sample_every=SAMPLE_EVERY, start_minute=30,
        )
        assert evaluation.false_alarm_rate > 0.0
        assert evaluation.localizations == []

    def test_undetected_incident_recorded(self, warm_service, simulator):
        """A negligible scope (tiny retain drop on a tail combination) must
        show up as an undetected incident, not be silently dropped."""
        tiny = Incident(
            ac("(L1, Fixed, IOS, Site1)"), 2, 3, retain_fraction=0.9
        )
        evaluation = evaluate_service(
            warm_service, simulator, IncidentSchedule([tiny]), 6,
            sample_every=SAMPLE_EVERY, start_minute=1440,
        )
        assert evaluation.detection_rate == 0.0
        assert evaluation.detection_delays[0] is None

    def test_detection_delay_measured(self, warm_service, simulator):
        """An incident that starts mild and the alarm misses initially is
        fine — delay is intervals from onset to first alarm."""
        pattern = ac(heavy_location(simulator))
        schedule = IncidentSchedule([Incident(pattern, 2, 8, retain_fraction=0.1)])
        evaluation = evaluate_service(
            warm_service, simulator, schedule, 10,
            sample_every=SAMPLE_EVERY, start_minute=1440,
        )
        delay = evaluation.detection_delays[0]
        assert delay is not None and delay >= 0
        assert evaluation.mean_detection_delay == delay


class TestAccuracyMetric:
    def test_accuracy_requires_all_truth_in_topk(self):
        evaluation = TemporalEvaluation(n_steps=2)
        a, b = ac("(L1, *, *, *)"), ac("(L2, *, *, *)")
        evaluation.localizations = [
            (0, (a, b), [a, b]),   # both found
            (1, (a, b), [a]),      # one missing
        ]
        assert evaluation.localization_accuracy(k=2) == 0.5

    def test_accuracy_empty(self):
        assert TemporalEvaluation().localization_accuracy() == 0.0
