"""Tests for the assumption-violation crossover study."""

import numpy as np
import pytest

from repro.baselines import Squeeze
from repro.core.miner import RAPMiner
from repro.data.dataset import deviation
from repro.experiments.crossover import (
    SpreadStudyConfig,
    generate_spread_cases,
    magnitude_spread_study,
)

SMALL = SpreadStudyConfig(attribute_sizes=(6, 5, 4), rap_dimensions=(1,), n_raps=1,
                          n_cases=6, seed=11)


class TestGenerateSpreadCases:
    def test_zero_spread_is_vertical_assumption(self):
        cases = generate_spread_cases(0.0, SMALL)
        for case in cases:
            dev = deviation(case.dataset.v, case.dataset.f)
            for rap in case.true_raps:
                mask = case.dataset.mask_of(rap)
                assert dev[mask].std() < 1e-9

    def test_positive_spread_varies_leaf_deviations(self):
        cases = generate_spread_cases(0.3, SMALL)
        spread_seen = False
        for case in cases:
            dev = deviation(case.dataset.v, case.dataset.f)
            for rap in case.true_raps:
                mask = case.dataset.mask_of(rap)
                if mask.sum() > 3 and dev[mask].std() > 0.05:
                    spread_seen = True
        assert spread_seen

    def test_labels_identical_across_spreads(self):
        """The detector's labels (hence RAPMiner's input) do not depend on
        the spread — only the value pattern Squeeze reads does."""
        a = generate_spread_cases(0.0, SMALL)
        b = generate_spread_cases(0.4, SMALL)
        for case_a, case_b in zip(a, b):
            assert case_a.true_raps == case_b.true_raps
            assert np.array_equal(case_a.dataset.labels, case_b.dataset.labels)

    def test_anomalous_devs_bounded(self):
        cfg = SMALL
        cases = generate_spread_cases(0.5, cfg)
        for case in cases:
            dev = deviation(case.dataset.v, case.dataset.f)
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            assert (dev[truth] >= cfg.min_anomalous_dev - 1e-9).all()
            assert (dev[truth] <= cfg.max_anomalous_dev + 1e-9).all()

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            generate_spread_cases(-0.1, SMALL)

    def test_metadata_records_spread(self):
        cases = generate_spread_cases(0.2, SMALL)
        assert all(case.metadata["spread"] == 0.2 for case in cases)


class TestSpreadStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return magnitude_spread_study(
            spreads=(0.0, 0.4),
            methods=[RAPMiner(), Squeeze()],
            config=SpreadStudyConfig(
                attribute_sizes=(6, 5, 4, 4), n_cases=8, seed=13
            ),
        )

    def test_structure(self, study):
        assert set(study) == {"RAPMiner", "Squeeze"}
        assert set(study["RAPMiner"]) == {0.0, 0.4}

    def test_rapminer_flat_across_spreads(self, study):
        """Label-driven: same labels, same answer."""
        values = study["RAPMiner"]
        assert abs(values[0.0] - values[0.4]) < 0.15

    def test_squeeze_degrades_with_spread(self, study):
        """The crossover mechanism: Squeeze competitive at spread 0,
        collapsing once the vertical assumption erodes."""
        values = study["Squeeze"]
        assert values[0.0] > 0.6
        assert values[0.4] < values[0.0] - 0.2

    def test_crossover_exists(self, study):
        """At spread 0 the gap is small; at 0.4 RAPMiner clearly wins."""
        gap_at_zero = study["RAPMiner"][0.0] - study["Squeeze"][0.0]
        gap_at_large = study["RAPMiner"][0.4] - study["Squeeze"][0.4]
        assert gap_at_large > gap_at_zero + 0.2
