"""Tests for multi-seed replication."""

import pytest

from repro.baselines import Adtributor
from repro.core.miner import RAPMiner
from repro.experiments.multi_seed import SeedStatistics, replicate_rapmd_comparison
from repro.experiments.presets import fast_preset


class TestSeedStatistics:
    def test_mean_and_std(self):
        stats = SeedStatistics()
        for value in (0.8, 0.9, 1.0):
            stats.add("m", value)
        assert stats.mean("m") == pytest.approx(0.9)
        assert stats.std("m") == pytest.approx(0.1)

    def test_single_sample_std_zero(self):
        stats = SeedStatistics()
        stats.add("m", 0.5)
        assert stats.std("m") == 0.0

    def test_summary_format(self):
        stats = SeedStatistics()
        stats.add("m", 0.8)
        stats.add("m", 1.0)
        assert stats.summary()["m"] == "0.900 ± 0.141"

    def test_always_better(self):
        stats = SeedStatistics()
        for a, b in ((0.9, 0.5), (0.8, 0.6)):
            stats.add("A", a)
            stats.add("B", b)
        assert stats.always_better("A", "B")
        assert stats.always_better("A", "B", margin=0.2)
        assert not stats.always_better("A", "B", margin=0.35)

    def test_always_better_mismatched_counts(self):
        stats = SeedStatistics()
        stats.add("A", 0.9)
        stats.add("A", 0.8)
        stats.add("B", 0.5)
        with pytest.raises(ValueError):
            stats.always_better("A", "B")


class TestReplication:
    @pytest.fixture(scope="class")
    def stats(self):
        return replicate_rapmd_comparison(
            seeds=(1, 2, 3),
            preset_factory=fast_preset,
            methods_factory=lambda: [RAPMiner(), Adtributor()],
        )

    def test_collects_all_methods_and_seeds(self, stats):
        assert set(stats.samples) == {"RAPMiner", "Adtributor"}
        assert len(stats.samples["RAPMiner"]) == 3

    def test_rapminer_beats_adtributor_on_every_seed(self, stats):
        """The Fig. 8(b) ordering must be seed-robust, not a lucky draw."""
        assert stats.always_better("RAPMiner", "Adtributor", margin=0.1)

    def test_scores_in_unit_interval(self, stats):
        for values in stats.samples.values():
            assert all(0.0 <= v <= 1.0 for v in values)
