"""Tests for the evaluation runner."""

import pytest

from repro.core.attribute import AttributeCombination
from repro.core.miner import RAPMiner
from repro.data.injection import LocalizationCase
from repro.experiments.runner import MethodEvaluation, run_cases
from tests.conftest import make_labelled_dataset


class FixedLocalizer:
    """Returns a canned ranking regardless of input."""

    name = "fixed"

    def __init__(self, patterns):
        self.patterns = [AttributeCombination.parse(p) for p in patterns]
        self.calls = []

    def localize(self, dataset, k=None):
        self.calls.append(k)
        return self.patterns if k is None else self.patterns[:k]


@pytest.fixture
def cases(example_schema):
    ds1 = make_labelled_dataset(example_schema, ["(a1, *, *)"])
    ds2 = make_labelled_dataset(example_schema, ["(a2, b2, *)"])
    return [
        LocalizationCase("c1", ds1, (AttributeCombination.parse("(a1, *, *)"),),
                         metadata={"group": (1, 1)}),
        LocalizationCase("c2", ds2, (AttributeCombination.parse("(a2, b2, *)"),),
                         metadata={"group": (2, 1)}),
    ]


class TestRunCases:
    def test_runs_every_case(self, cases):
        evaluation = run_cases(RAPMiner(), cases)
        assert len(evaluation.results) == 2
        assert evaluation.method_name == "RAPMiner"

    def test_k_from_truth_requests_truth_count(self, cases):
        method = FixedLocalizer(["(a1, *, *)"])
        run_cases(method, cases, k_from_truth=True)
        assert method.calls == [1, 1]

    def test_explicit_k_passed(self, cases):
        method = FixedLocalizer(["(a1, *, *)"])
        run_cases(method, cases, k=5)
        assert method.calls == [5, 5]

    def test_timings_recorded(self, cases):
        evaluation = run_cases(RAPMiner(), cases)
        assert all(r.seconds >= 0.0 for r in evaluation.results)

    def test_groups_propagated(self, cases):
        evaluation = run_cases(RAPMiner(), cases)
        assert evaluation.groups() == [(1, 1), (2, 1)]


class TestAggregations:
    def test_perfect_f1(self, cases):
        evaluation = run_cases(RAPMiner(), cases, k_from_truth=True)
        assert evaluation.mean_f1 == pytest.approx(1.0)

    def test_recall_at_k(self, cases):
        method = FixedLocalizer(["(a1, *, *)"])  # right for case 1 only
        evaluation = run_cases(method, cases, k=3)
        assert evaluation.recall_at(3) == pytest.approx(0.5)

    def test_by_group_split(self, cases):
        evaluation = run_cases(RAPMiner(), cases, k_from_truth=True)
        split = evaluation.by_group()
        assert set(split) == {(1, 1), (2, 1)}
        assert all(len(e.results) == 1 for e in split.values())

    def test_group_mean_f1(self, cases):
        method = FixedLocalizer(["(a1, *, *)"])
        evaluation = run_cases(method, cases, k_from_truth=True)
        means = evaluation.group_mean_f1()
        assert means[(1, 1)] == pytest.approx(1.0)
        assert means[(2, 1)] == pytest.approx(0.0)

    def test_empty_evaluation(self):
        evaluation = MethodEvaluation("empty")
        assert evaluation.mean_f1 == 0.0
        assert evaluation.mean_seconds == 0.0
        assert evaluation.recall_at(3) == 0.0


class TestRunCasesWorkers:
    def test_n_workers_matches_serial(self, cases):
        serial = run_cases(RAPMiner(), cases, k_from_truth=True)
        sharded = run_cases(RAPMiner(), cases, k_from_truth=True, n_workers=2)
        assert [r.case_id for r in sharded.results] == [
            r.case_id for r in serial.results
        ]
        for got, want in zip(sharded.results, serial.results):
            assert got.predicted == want.predicted
            assert got.group == want.group

    def test_n_workers_times_inside_worker(self, cases):
        sharded = run_cases(RAPMiner(), cases, k_from_truth=True, n_workers=2)
        # Pool dispatch costs milliseconds; per-case seconds must reflect
        # only the localization (sub-millisecond on these toy cases).
        assert all(0 < r.seconds < 0.5 for r in sharded.results)

    def test_default_is_serial(self, cases):
        method = FixedLocalizer(["(a1, *, *)"])
        run_cases(method, cases, k=1)
        # The serial path invokes the method in-process: calls are visible.
        assert method.calls == [1, 1]
