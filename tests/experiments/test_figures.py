"""Tests for the figure-regeneration entry points (small scale)."""

import pytest

from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.data.squeeze_dataset import SqueezeDatasetConfig, generate_squeeze_dataset
from repro.experiments.figures import (
    figure8a,
    figure8b,
    figure9a,
    figure9b,
    figure10a,
    figure10b,
    run_rapmd_comparison,
    run_squeeze_comparison,
)
from repro.core.miner import RAPMiner


@pytest.fixture(scope="module")
def squeeze_evals():
    config = SqueezeDatasetConfig(
        attribute_sizes=(5, 4, 3, 3),
        cases_per_group=2,
        groups=((1, 1), (2, 2)),
        seed=2,
    )
    cases = generate_squeeze_dataset(config)
    return run_squeeze_comparison(cases, methods=[RAPMiner()])


@pytest.fixture(scope="module")
def rapmd_cases():
    return generate_rapmd(
        cdn_schema(5, 2, 2, 4), RAPMDConfig(n_cases=6, n_days=2, seed=3)
    )


class TestSqueezeFigures:
    def test_figure8a_structure(self, squeeze_evals):
        data = figure8a(squeeze_evals)
        assert set(data) == {"RAPMiner"}
        assert set(data["RAPMiner"]) == {(1, 1), (2, 2)}
        assert all(0.0 <= v <= 1.0 for v in data["RAPMiner"].values())

    def test_figure9a_structure(self, squeeze_evals):
        data = figure9a(squeeze_evals)
        assert all(v > 0.0 for v in data["RAPMiner"].values())


class TestRapmdFigures:
    def test_figure8b_structure(self, rapmd_cases):
        evals = run_rapmd_comparison(rapmd_cases, methods=[RAPMiner()])
        data = figure8b(evals)
        assert set(data["RAPMiner"]) == {3, 4, 5}
        rc = data["RAPMiner"]
        assert rc[3] <= rc[4] <= rc[5]  # monotone in k

    def test_figure9b_structure(self, rapmd_cases):
        evals = run_rapmd_comparison(rapmd_cases, methods=[RAPMiner()])
        data = figure9b(evals)
        assert data["RAPMiner"] > 0.0


class TestSensitivityFigures:
    def test_figure10a_curve(self, rapmd_cases):
        curve = figure10a(rapmd_cases, t_cp_values=(0.01, 0.05))
        assert set(curve) == {0.01, 0.05}
        assert all(0.0 <= v <= 1.0 for v in curve.values())

    def test_figure10b_curve(self, rapmd_cases):
        curve = figure10b(rapmd_cases, t_conf_values=(0.6, 0.9))
        assert set(curve) == {0.6, 0.9}
        assert all(0.0 <= v <= 1.0 for v in curve.values())
