"""Tests for the extension studies (noise levels, attribute scaling)."""

import pytest

from repro.experiments.extensions import (
    AttributeScalingResult,
    attribute_scaling_study,
    noise_level_study,
)


class TestNoiseLevelStudy:
    @pytest.fixture(scope="class")
    def curve(self):
        return noise_level_study(
            levels=("B0", "B3"),
            cases_per_group=3,
            groups=((1, 1), (2, 1)),
            attribute_sizes=(5, 4, 3, 3),
            seed=4,
        )

    def test_returns_requested_levels(self, curve):
        assert set(curve) == {"B0", "B3"}

    def test_clean_labels_near_perfect(self, curve):
        assert curve["B0"] > 0.9

    def test_noise_degrades_f1(self, curve):
        assert curve["B3"] <= curve["B0"]

    def test_unknown_level_rejected(self):
        with pytest.raises(KeyError):
            noise_level_study(levels=("B7",))


class TestAttributeScalingStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return attribute_scaling_study(
            attribute_counts=(4, 6),
            rap_dimensions=(1, 3),
            n_cases=4,
            target_leaves=256,
            seed=5,
        )

    def test_series_shapes(self, study):
        by_attributes, by_dimension = study
        assert [r.n_attributes for r in by_attributes] == [4, 6]
        assert [r.rap_dimension for r in by_dimension] == [1, 3]
        assert all(isinstance(r, AttributeScalingResult) for r in by_attributes)

    def test_deletion_keeps_roughly_the_rap_attributes(self, study):
        """The mechanism behind the claim: surviving attributes track the
        RAP dimension, not the schema size."""
        by_attributes, __ = study
        for result in by_attributes:
            assert result.mean_kept_attributes <= result.n_attributes
            assert result.mean_kept_attributes < result.n_attributes  # something deleted

    def test_localization_stays_accurate(self, study):
        by_attributes, by_dimension = study
        for result in by_attributes:
            assert result.recall_at_1 >= 0.5
        assert by_dimension[0].recall_at_1 >= 0.5

    def test_times_positive(self, study):
        by_attributes, by_dimension = study
        assert all(r.mean_seconds > 0 for r in by_attributes + by_dimension)
