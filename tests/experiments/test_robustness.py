"""Tests for the asymmetric detector-robustness study."""

import pytest

from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.experiments.extensions import detector_robustness_study


@pytest.fixture(scope="module")
def cases():
    return generate_rapmd(
        cdn_schema(6, 2, 2, 5), RAPMDConfig(n_cases=8, n_days=2, seed=9)
    )


@pytest.fixture(scope="module")
def study(cases):
    return detector_robustness_study(
        cases,
        false_negative_rates=(0.0, 0.3),
        false_positive_rates=(0.0, 0.05),
        seed=9,
    )


class TestRobustnessStudy:
    def test_returns_both_directions(self, study):
        assert set(study) == {"false_negative", "false_positive"}
        assert set(study["false_negative"]) == {0.0, 0.3}
        assert set(study["false_positive"]) == {0.0, 0.05}

    def test_clean_labels_baseline_matches(self, study):
        assert study["false_negative"][0.0] == study["false_positive"][0.0]
        assert study["false_negative"][0.0] > 0.5

    def test_errors_never_help(self, study):
        baseline = study["false_negative"][0.0]
        assert study["false_negative"][0.3] <= baseline + 1e-9
        assert study["false_positive"][0.05] <= baseline + 1e-9

    def test_moderate_false_negatives_tolerated(self, cases):
        """Criteria 2's error tolerance: 10% missed leaves should cost
        little because t_conf=0.8 leaves headroom below confidence 1.0."""
        study = detector_robustness_study(
            cases, false_negative_rates=(0.0, 0.1), false_positive_rates=(), seed=3
        )
        baseline = study["false_negative"][0.0]
        degraded = study["false_negative"][0.1]
        assert degraded >= baseline - 0.25

    def test_original_cases_untouched(self, cases, study):
        """The study perturbs copies, not the input datasets."""
        import numpy as np

        for case in cases:
            truth = np.zeros(case.dataset.n_rows, dtype=bool)
            for rap in case.true_raps:
                truth |= case.dataset.mask_of(rap)
            assert np.array_equal(case.dataset.labels, truth)
