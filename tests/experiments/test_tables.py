"""Tests for Table IV / V / VI regeneration."""

import pytest

from repro.experiments.tables import Table6Result, table4, table5, table6


class TestTable4:
    def test_paper_values(self):
        """Exactly the row the paper prints in Table IV."""
        assert table4() == {
            1: 0.5,
            2: 0.75,
            3: 0.875,
            4: 0.9375,
            5: 0.96875,
        }

    def test_exact_variant_dominates_bounds(self):
        exact = table4(ks=(1, 2, 3), n_attributes=6)
        bounds = table4(ks=(1, 2, 3))
        for k in (1, 2, 3):
            assert exact[k] > bounds[k]


class TestTable5:
    def test_total_vertex_count(self):
        labels = table5()
        assert len(labels) == 35  # 7 + 16 + 12

    def test_spot_rows(self):
        labels = table5()
        assert str(labels["1-1"]) == "(a1, *, *)"
        assert str(labels["2-6"]) == "(a2, b2, *)"
        assert str(labels["3-12"]) == "(a3, b2, c2)"


class TestTable6:
    def test_runs_ablation(self, example_schema):
        from repro.core.attribute import AttributeCombination
        from repro.data.injection import LocalizationCase
        from tests.conftest import make_labelled_dataset

        ds = make_labelled_dataset(example_schema, ["(a1, *, *)"])
        cases = [
            LocalizationCase(
                "c", ds, (AttributeCombination.parse("(a1, *, *)"),)
            )
        ]
        result = table6(cases)
        assert 0.0 <= result.rc3_with_deletion <= 1.0
        assert result.seconds_with_deletion > 0.0
        assert result.seconds_without_deletion > 0.0

    def test_derived_percentages(self):
        result = Table6Result(
            rc3_with_deletion=0.814,
            rc3_without_deletion=0.863,
            seconds_with_deletion=0.618,
            seconds_without_deletion=1.067,
        )
        # The paper's Table VI: 42.07% faster, 4.87% less effective... up to
        # rounding of the published inputs.
        assert result.efficiency_improvement == pytest.approx(0.4208, abs=0.001)
        assert result.effectiveness_decrease == pytest.approx(0.0568, abs=0.001)

    def test_zero_division_guards(self):
        result = Table6Result(0.0, 0.0, 0.0, 0.0)
        assert result.efficiency_improvement == 0.0
        assert result.effectiveness_decrease == 0.0
