"""Tests for the paper-reference data and the bar-chart renderer."""

import pytest

from repro.experiments.paper_reference import (
    ADTRIBUTOR_RAPMD_RC,
    FIG8A_F1,
    TABLE4,
    TABLE6,
    fig8a_reference,
)
from repro.experiments.reporting import render_bar_chart
from repro.experiments.tables import Table6Result, table4


class TestReferenceData:
    def test_table4_matches_closed_form(self):
        """The digitized Table IV must equal our Eq. 2 lower bounds."""
        assert TABLE4 == table4()

    def test_table6_internally_consistent(self):
        """The quoted derived percentages follow from the quoted inputs."""
        result = Table6Result(
            rc3_with_deletion=TABLE6["rc3_with_deletion"],
            rc3_without_deletion=TABLE6["rc3_without_deletion"],
            seconds_with_deletion=TABLE6["seconds_with_deletion"],
            seconds_without_deletion=TABLE6["seconds_without_deletion"],
        )
        assert result.efficiency_improvement == pytest.approx(
            TABLE6["efficiency_improvement"], abs=0.001
        )
        # The paper's 4.87% does not follow from its own quoted RC@3 values
        # (0.814/0.863 -> 5.68%); record the discrepancy rather than hide it.
        assert result.effectiveness_decrease == pytest.approx(0.0568, abs=0.001)
        assert result.effectiveness_decrease != pytest.approx(
            TABLE6["effectiveness_decrease"], abs=0.005
        )

    def test_fig8a_lookup(self):
        assert fig8a_reference("RAPMiner", (1, 1)) == 1.0
        assert fig8a_reference("RAPMiner", (2, 2)) is None  # Squeeze wins there
        assert fig8a_reference("Squeeze", (2, 2)) == 0.970

    def test_fig8a_values_in_unit_interval(self):
        assert all(0.0 <= v <= 1.0 for v in FIG8A_F1.values())

    def test_adtributor_reference_band(self):
        assert 0.2 <= ADTRIBUTOR_RAPMD_RC <= 0.5


class TestBarChart:
    def test_scales_to_maximum(self):
        chart = render_bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        chart = render_bar_chart({"short": 1.0, "a-longer-label": 0.2})
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        assert "0.750" in render_bar_chart({"x": 0.75})

    def test_explicit_max_value(self):
        chart = render_bar_chart({"x": 0.5}, width=10, max_value=1.0)
        assert chart.count("#") == 5

    def test_zero_and_negative_safe(self):
        chart = render_bar_chart({"x": 0.0, "y": -1.0}, width=8)
        assert "#" not in chart

    def test_empty_input(self):
        assert render_bar_chart({}) == "(no data)"

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            render_bar_chart({"x": 1.0}, width=0)
