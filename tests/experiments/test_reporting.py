"""Tests for text rendering of experiment outputs."""

import pytest

from repro.experiments.reporting import (
    format_group,
    format_percent,
    format_seconds,
    render_series_table,
    render_table,
)


class TestFormatting:
    def test_group_tuple(self):
        assert format_group((1, 3)) == "(1,3)"

    def test_group_scalar(self):
        assert format_group(3) == "3"
        assert format_group("B0") == "B0"

    def test_seconds_scales(self):
        assert format_seconds(42.0) == "42.0s"
        assert format_seconds(0.618) == "0.618s"
        assert format_seconds(0.0005) == "0.50ms"

    def test_percent(self):
        assert format_percent(0.4207) == "42.07%"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["k", "ratio"], [["1", "0.5"], ["2", "0.75"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "k" in lines[0] and "ratio" in lines[0]
        assert set(lines[1]) <= {"|", "-"}

    def test_column_widths_fit_content(self):
        text = render_table(["m"], [["a-very-long-cell"]])
        header, __, row = text.splitlines()
        assert len(header) == len(row)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])


class TestRenderSeriesTable:
    def test_renders_method_by_group(self):
        series = {
            "RAPMiner": {(1, 1): 1.0, (1, 2): 0.95},
            "Squeeze": {(1, 1): 0.9},
        }
        text = render_series_table(series, column_order=[(1, 1), (1, 2)])
        assert "(1,1)" in text
        assert "RAPMiner" in text
        assert "-" in text.splitlines()[-1]  # missing cell placeholder

    def test_auto_column_discovery(self):
        series = {"m1": {3: 0.5}, "m2": {4: 0.6}}
        text = render_series_table(series)
        assert "3" in text and "4" in text

    def test_value_format_applied(self):
        text = render_series_table({"m": {1: 0.123456}}, value_format="{:.2f}")
        assert "0.12" in text
