"""Tests for the one-shot report builder."""

import pytest

from repro.core.miner import RAPMiner
from repro.experiments.report_builder import ReportSections, build_report, main


@pytest.fixture(scope="module")
def small_report():
    """A minimal fast report with only RAPMiner (keeps the test quick)."""
    return build_report(
        scale="fast",
        seed=3,
        sections=ReportSections(squeeze=False, rapmd=True, sensitivity=False, ablation=True),
        methods=[RAPMiner()],
    )


class TestBuildReport:
    def test_contains_requested_sections(self, small_report):
        assert "# RAPMiner reproduction report" in small_report
        assert "Fig. 8(b)" in small_report
        assert "Table VI" in small_report
        assert "Table IV" in small_report  # always present

    def test_omits_disabled_sections(self, small_report):
        assert "Fig. 8(a)" not in small_report
        assert "Fig. 10(a)" not in small_report

    def test_mentions_preset_and_seed(self, small_report):
        assert "**fast**" in small_report
        assert "seed: **3**" in small_report

    def test_table4_values_present(self, small_report):
        assert "0.96875" in small_report

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            build_report(scale="huge")

    def test_full_fast_report_has_all_figures(self):
        text = build_report(scale="fast", seed=2, methods=[RAPMiner()])
        for marker in ("Fig. 8(a)", "Fig. 8(b)", "Fig. 9(a)", "Fig. 9(b)",
                       "Fig. 10(a)", "Fig. 10(b)", "Table IV", "Table VI"):
            assert marker in text, marker


class TestMain:
    def test_writes_file(self, tmp_path, capsys, monkeypatch):
        # Patch the builder to avoid rerunning the full fast evaluation.
        import repro.experiments.report_builder as module

        monkeypatch.setattr(module, "build_report", lambda **kw: "# stub report")
        out = tmp_path / "report.md"
        assert main(["--out", str(out)]) == 0
        assert out.read_text() == "# stub report"
        assert "wrote" in capsys.readouterr().out

    def test_prints_to_stdout(self, capsys, monkeypatch):
        import repro.experiments.report_builder as module

        monkeypatch.setattr(module, "build_report", lambda **kw: "# stub report")
        assert main([]) == 0
        assert "# stub report" in capsys.readouterr().out
