"""End-to-end smoke: the ``repro serve`` process over a real wire.

This is the ``make serve-smoke`` suite: boot the CLI server in a child
process, submit cases over HTTP and binary frames, verify the answers
bit-exact against an in-process run, scrape ``/metrics`` off the same
port, and shut down cleanly — both by request count and by SIGINT.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time

import pytest

from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.serving import BinaryServingClient, ServingClient

SERVE_ARGS = [
    sys.executable,
    "-u",
    "-m",
    "repro.cli",
    "serve",
    "--port",
    "0",
    "--binary-port",
    "0",
    "--shards",
    "1",
]


@pytest.fixture(scope="module")
def cases():
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=3, n_days=2, seed=9)
    )


@pytest.fixture(scope="module")
def serial(cases):
    miner = RAPMiner()
    return {
        case.case_id: [
            str(p) for p in miner.localize(case.dataset, len(case.true_raps))
        ]
        for case in cases
    }


def start_server(extra_args=()):
    """Spawn ``repro serve`` and parse the bound ports off its banner."""
    process = subprocess.Popen(
        SERVE_ARGS + list(extra_args),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=str(__import__("pathlib").Path(__file__).resolve().parents[2]),
    )
    banner = process.stdout.readline()
    # "serving: POST http://127.0.0.1:PORT/localize ... binary frames on port P"
    assert "serving: POST http://" in banner, banner
    http_port = int(banner.split("http://", 1)[1].split("/", 1)[0].rsplit(":", 1)[1])
    binary_port = None
    if "binary frames on port" in banner:
        binary_port = int(banner.rsplit("port", 1)[1].split()[0])
    process.stdout.readline()  # the admission banner line
    return process, http_port, binary_port


def drain(process, timeout=60):
    out = process.stdout.read()
    code = process.wait(timeout=timeout)
    return code, out


def test_serve_smoke_end_to_end(cases, serial):
    """Wire submission, bit-identity, metrics scrape, count-based exit."""
    n_requests = len(cases) + 1
    process, http_port, binary_port = start_server(
        ["--max-requests", str(n_requests)]
    )
    try:
        client = ServingClient("127.0.0.1", http_port)
        for case in cases:
            body = client.localize(case, k=len(case.true_raps), request_id=case.case_id)
            assert body["status"] == "ok"
            assert body["root_causes"] == serial[case.case_id]
            assert body["request_id"] == case.case_id
        # The telemetry plane shares the port and sees the capture.
        text = client.metrics()
        assert "serving_requests_total" in text
        assert 'protocol="http"' in text
        # One more over the binary plane reaches --max-requests; the
        # process drains its fleet and exits 0 on its own.
        with BinaryServingClient("127.0.0.1", binary_port) as binary:
            body = binary.localize(cases[0], k=len(cases[0].true_raps))
            assert body["root_causes"] == serial[cases[0].case_id]
        code, out = drain(process)
        assert code == 0, out
        assert f"served {n_requests} request(s)" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


def test_serve_smoke_sigint_drains_cleanly(cases):
    """Ctrl-C mid-service drains admitted work and exits 0."""
    process, http_port, __ = start_server()
    try:
        client = ServingClient("127.0.0.1", http_port)
        assert client.localize(cases[0], k=1)["status"] == "ok"
        process.send_signal(signal.SIGINT)
        code, out = drain(process)
        assert code == 0, out
        assert "draining" in out
        assert "served 1 request(s)" in out
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)


def test_serve_smoke_tenant_allowlist(cases):
    process, http_port, __ = start_server(["--tenants", "edge-eu"])
    try:
        client = ServingClient("127.0.0.1", http_port)
        refused = client.localize(cases[0], tenant="other", k=1)
        assert refused["status"] == "error"
        assert refused["code"] == "unknown_tenant"
        served = client.localize(cases[0], tenant="edge-eu", k=1)
        assert served["status"] == "ok"
    finally:
        process.send_signal(signal.SIGINT)
        code, __ = drain(process)
        assert code == 0
