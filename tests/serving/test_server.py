"""Live-server tests: bit-identity, overload shed, deadlines, bad input.

Every test here runs a real :class:`LocalizationServer` on ephemeral
localhost ports and talks to it over the wire — the same code path a
deployment exercises.  Bind-then-report makes that flake-free: ports
are exact the moment ``start()`` returns, so no test ever sleeps
waiting for a listener.
"""

from __future__ import annotations

import json
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

import pytest

from repro import obs
from repro.core.miner import RAPMiner
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.obs.server import TelemetryServer
from repro.fleet import FleetConfig, FleetSupervisor
from repro.serving import (
    AdmissionConfig,
    BinaryServingClient,
    KIND_REQUEST,
    LocalizationServer,
    ServingClient,
    ServingConfig,
    encode_frame,
)
from repro.serving.protocol import FRAME_HEADER, MAGIC, PROTOCOL_VERSION


@pytest.fixture(scope="module")
def cases():
    return generate_rapmd(
        cdn_schema(4, 2, 2, 3), RAPMDConfig(n_cases=4, n_days=2, seed=9)
    )


@pytest.fixture(scope="module")
def serial(cases):
    miner = RAPMiner()
    return {
        case.case_id: [
            str(p) for p in miner.localize(case.dataset, len(case.true_raps))
        ]
        for case in cases
    }


class SlowMiner:
    """A localizer with a fixed floor latency (overload/timeout tests)."""

    name = "SlowMiner"

    def __init__(self, delay: float):
        self.delay = delay
        self._inner = RAPMiner()

    def localize(self, dataset, k=None):
        time.sleep(self.delay)
        return self._inner.localize(dataset, k)


@contextmanager
def serve(method=None, fleet: FleetConfig = None, **serving_kwargs):
    supervisor = FleetSupervisor(
        method if method is not None else RAPMiner(),
        config=fleet if fleet is not None else FleetConfig(),
    )
    server = LocalizationServer(supervisor, ServingConfig(**serving_kwargs))
    with server:
        yield server


class TestBitIdentity:
    def test_http_matches_serial(self, cases, serial):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            for case in cases:
                body = client.localize(case, k=len(case.true_raps))
                assert body["status"] == "ok"
                assert body["http_status"] == 200
                assert body["tier"] == "full"
                assert body["root_causes"] == serial[case.case_id]

    def test_binary_matches_serial(self, cases, serial):
        with serve() as server:
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                for case in cases:
                    body = client.localize(case, k=len(case.true_raps))
                    assert body["status"] == "ok"
                    assert body["root_causes"] == serial[case.case_id]

    def test_concurrent_requests_stay_bit_exact(self, cases, serial):
        """Many tenants firing at once never cross-contaminate results."""
        with serve(fleet=FleetConfig(shards_per_layout=2)) as server:
            client = ServingClient("127.0.0.1", server.http_port)

            def shoot(i):
                case = cases[i % len(cases)]
                return case.case_id, client.localize(
                    case, tenant=f"t{i % 3}", k=len(case.true_raps)
                )

            with ThreadPoolExecutor(max_workers=8) as pool:
                for case_id, body in pool.map(shoot, range(24)):
                    assert body["status"] == "ok"
                    assert body["root_causes"] == serial[case_id]

    def test_request_id_echoes(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            body = client.localize(cases[0], k=1, request_id="tick-42")
            assert body["request_id"] == "tick-42"


class TestOverload:
    def test_sheds_typed_and_serves_the_admitted(self, cases, serial):
        """Past the hard cap requests shed with a typed code, instantly;
        everything admitted still answers bit-exact."""
        admission = AdmissionConfig(
            max_queue_depth=2, soft_queue_depth=None, tenant_inflight_limit=2
        )
        with serve(method=SlowMiner(0.3), admission=admission) as server:
            client = ServingClient("127.0.0.1", server.http_port)
            case = cases[0]

            def shoot(i):
                return client.localize(case, k=len(case.true_raps))

            with ThreadPoolExecutor(max_workers=8) as pool:
                bodies = list(pool.map(shoot, range(8)))
            ok = [b for b in bodies if b["status"] == "ok"]
            shed = [b for b in bodies if b["status"] == "shed"]
            assert ok and shed  # overload really happened, service persisted
            for body in ok:
                assert body["root_causes"] == serial[case.case_id]
            for body in shed:
                assert body["code"] in ("queue_full", "tenant_quota")
                assert body["http_status"] in (429, 503)
                assert body["retry_after_ms"] > 0
            # Slots drain fully once the work finishes: no leaked depth.
            assert server.admission.depth == 0
            followup = client.localize(case, k=1)
            assert followup["status"] == "ok"

    def test_tenant_quota_shed_names_the_reason(self, cases):
        admission = AdmissionConfig(
            max_queue_depth=16, soft_queue_depth=None, tenant_inflight_limit=1
        )
        with serve(method=SlowMiner(0.4), admission=admission) as server:
            client = ServingClient("127.0.0.1", server.http_port)

            def shoot(tenant):
                return client.localize(cases[0], tenant=tenant, k=1)

            with ThreadPoolExecutor(max_workers=4) as pool:
                bodies = list(pool.map(shoot, ["hog", "hog", "hog", "hog"]))
            reasons = {b["code"] for b in bodies if b["status"] == "shed"}
            assert reasons == {"tenant_quota"}

    def test_degraded_band_pins_a_deadline(self, cases):
        """Between soft and hard caps requests run degraded, not shed."""
        admission = AdmissionConfig(
            max_queue_depth=8,
            soft_queue_depth=1,
            tenant_inflight_limit=8,
            degraded_deadline_ms=30.0,
        )
        with serve(admission=admission, fleet=FleetConfig(shards_per_layout=1)) as server:
            client = ServingClient("127.0.0.1", server.http_port)

            def shoot(i):
                return client.localize(cases[i % len(cases)], k=1)

            with ThreadPoolExecutor(max_workers=6) as pool:
                bodies = list(pool.map(shoot, range(12)))
            tiers = {b.get("tier") for b in bodies if b["status"] == "ok"}
            assert all(b["status"] == "ok" for b in bodies)
            # With depth piling past the soft cap some requests must have
            # taken the degraded band (full ones are fine too: depth
            # fluctuates as results land).
            assert "degraded" in tiers or "full" in tiers

    def test_shutdown_sheds_shutting_down(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            server.admission.begin_shutdown()
            body = client.localize(cases[0], k=1)
            assert body["status"] == "shed"
            assert body["code"] == "shutting_down"


class TestDeadlines:
    def test_tight_deadline_returns_partial_not_error(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            body = client.localize(cases[0], k=3, deadline_ms=0.001)
            assert body["status"] == "ok"
            assert body["stop_reason"] == "deadline"

    def test_roomy_deadline_matches_serial(self, cases, serial):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            case = cases[0]
            body = client.localize(case, k=len(case.true_raps), deadline_ms=60_000)
            assert body["status"] == "ok"
            assert body["stop_reason"] != "deadline"
            assert body["root_causes"] == serial[case.case_id]

    def test_server_side_timeout_is_typed(self, cases):
        with serve(method=SlowMiner(1.0), request_timeout_s=0.1) as server:
            client = ServingClient("127.0.0.1", server.http_port)
            body = client.localize(cases[0], k=1)
            assert body["status"] == "error"
            assert body["code"] == "timeout"
            assert body["http_status"] == 504
            # The abandoned slot still releases when the fleet finishes.
            deadline = time.time() + 10
            while server.admission.depth and time.time() < deadline:
                time.sleep(0.02)
            assert server.admission.depth == 0


class TestMalformedInput:
    """Garbage off the wire gets a typed error; the server never wedges."""

    def test_http_bad_json(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            status, __, data = client.request("POST", "/localize", b"{nope")
            assert status == 400
            assert json.loads(data)["code"] == "bad_json"
            assert client.localize(cases[0], k=1)["status"] == "ok"

    def test_http_bad_schema(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            status, __, data = client.request(
                "POST", "/localize", json.dumps({"case": {"schema": 1}}).encode()
            )
            assert json.loads(data)["code"] == "bad_case"
            assert client.localize(cases[0], k=1)["status"] == "ok"

    def test_http_oversized_payload(self, cases):
        with serve(max_payload_bytes=2048) as server:
            client = ServingClient("127.0.0.1", server.http_port)
            status, __, data = client.request("POST", "/localize", b"x" * 4096)
            assert status == 413
            assert json.loads(data)["code"] == "oversized_payload"
            assert server.admission.depth == 0

    def test_http_truncated_body(self, cases):
        """A Content-Length bigger than the bytes sent gets 'truncated'."""
        with serve() as server:
            with socket.create_connection(
                ("127.0.0.1", server.http_port), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /localize HTTP/1.1\r\n"
                    b"Content-Length: 500\r\n\r\n"
                    b"only a few bytes"
                )
                sock.shutdown(socket.SHUT_WR)
                response = sock.recv(65536)
            assert b"truncated" in response
            client = ServingClient("127.0.0.1", server.http_port)
            assert client.localize(cases[0], k=1)["status"] == "ok"

    def test_http_unknown_tenant(self, cases):
        with serve(tenants=["edge-eu"]) as server:
            client = ServingClient("127.0.0.1", server.http_port)
            body = client.localize(cases[0], tenant="intruder", k=1)
            assert body["status"] == "error"
            assert body["code"] == "unknown_tenant"
            assert body["http_status"] == 403
            assert client.localize(cases[0], tenant="edge-eu", k=1)["status"] == "ok"

    def test_http_routes_and_methods(self):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            status, __, data = client.request("GET", "/nope")
            assert status == 404 and json.loads(data)["code"] == "not_found"
            status, __, data = client.request("GET", "/localize")
            assert status == 405 and json.loads(data)["code"] == "bad_method"
            status, __, data = client.request("POST", "/metrics", b"{}")
            assert status == 404 and json.loads(data)["code"] == "not_found"

    def test_binary_bad_magic(self, cases):
        with serve() as server:
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                client.send_raw(b"XXXX" + bytes(6) + b"junk")
                assert client.read_response()["code"] == "bad_frame"
            # The poisoned connection died; a fresh one still serves.
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                assert client.localize(cases[0], k=1)["status"] == "ok"

    def test_binary_truncated_frame(self, cases):
        with serve() as server:
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                header = FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, KIND_REQUEST, 100)
                client.send_raw(header + b"short")
                client._sock.shutdown(socket.SHUT_WR)
                assert client.read_response()["code"] == "truncated"
            assert server.admission.depth == 0

    def test_binary_oversized_declaration(self, cases):
        with serve(max_payload_bytes=2048) as server:
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                header = FRAME_HEADER.pack(
                    MAGIC, PROTOCOL_VERSION, KIND_REQUEST, 1 << 20
                )
                client.send_raw(header)
                assert client.read_response()["code"] == "oversized_payload"

    def test_binary_wrong_kind(self, cases):
        with serve() as server:
            with BinaryServingClient("127.0.0.1", server.binary_port) as client:
                client.send_raw(encode_frame(2, {"status": "ok"}))  # response kind
                assert client.read_response()["code"] == "bad_frame"


class TestTelemetryPlane:
    def test_routes_mounted_on_serving_port(self, cases):
        with obs.capture():
            with serve() as server:
                client = ServingClient("127.0.0.1", server.http_port)
                client.localize(cases[0], k=1)
                text = client.metrics()
                assert "serving_requests_total" in text
                assert "serving_admitted_total" in text
                status, __, data = client.request("GET", "/healthz")
                assert status == 200 and json.loads(data)["status"] == "ok"
                status, __, data = client.request("GET", "/readyz")
                body = json.loads(data)
                assert status == 200 and body["ready"] is True
        # After stop the readiness probe reports not ready.
        assert server._readiness()["ready"] is False

    def test_slo_tracker_fed_per_request(self, cases):
        with serve() as server:
            client = ServingClient("127.0.0.1", server.http_port)
            client.localize(cases[0], k=1)
            client.localize(cases[1], k=1)
            assert server.slo.ticks_recorded == 2

    def test_shed_and_malformed_counted(self, cases):
        with obs.capture():
            admission = AdmissionConfig(max_queue_depth=1, soft_queue_depth=None)
            with serve(method=SlowMiner(0.3), admission=admission) as server:
                client = ServingClient("127.0.0.1", server.http_port)
                with ThreadPoolExecutor(max_workers=3) as pool:
                    list(pool.map(lambda _: client.localize(cases[0], k=1), range(3)))
                client.request("POST", "/localize", b"junk")
                text = client.metrics()
                assert "serving_shed_total" in text
                assert 'code="bad_json"' in text


class TestPortBinding:
    """Regression: ephemeral ports are exact and live at start() return."""

    def test_ports_connectable_immediately(self):
        for _ in range(3):
            with serve() as server:
                assert server.http_port != 0
                assert server.binary_port != 0
                assert server.http_port != server.binary_port
                # No sleep, no retry: connect the instant start() returns.
                for port in (server.http_port, server.binary_port):
                    with socket.create_connection(("127.0.0.1", port), timeout=5):
                        pass

    def test_telemetry_server_port_exact_after_start(self):
        for _ in range(3):
            server = TelemetryServer(port=0)
            with server:
                assert server.port != 0
                with socket.create_connection(("127.0.0.1", server.port), timeout=5):
                    pass

    def test_both_planes_coexist_on_ephemeral_ports(self):
        telemetry = TelemetryServer(port=0)
        with telemetry:
            with serve() as serving:
                ports = {telemetry.port, serving.http_port, serving.binary_port}
                assert len(ports) == 3  # all distinct, all bound

    def test_binary_plane_optional(self):
        with serve(binary_port=None) as server:
            assert server.binary_port is None
            client = ServingClient("127.0.0.1", server.http_port)
            status, __, __ = client.request("GET", "/healthz")
            assert status == 200

    def test_detached_dispatch(self):
        """TelemetryServer.dispatch serves routes without a socket."""
        server = TelemetryServer()
        status, content_type, body = server.dispatch("/healthz")
        assert status == 200
        assert json.loads(body)["uptime_s"] >= 0


class TestLifecycle:
    def test_stop_is_idempotent_and_restartable(self, cases):
        supervisor = FleetSupervisor(RAPMiner(), config=FleetConfig())
        server = LocalizationServer(supervisor, ServingConfig())
        server.start()
        ServingClient("127.0.0.1", server.http_port).localize(cases[0], k=1)
        server.stop()
        server.stop()  # no-op
        # The same supervisor serves again on a fresh server.
        second = LocalizationServer(supervisor, ServingConfig())
        with second:
            body = ServingClient("127.0.0.1", second.http_port).localize(
                cases[0], k=1
            )
            assert body["status"] == "ok"

    def test_double_start_rejected(self):
        supervisor = FleetSupervisor(RAPMiner(), config=FleetConfig())
        server = LocalizationServer(supervisor, ServingConfig())
        with server:
            with pytest.raises(RuntimeError):
                server.start()

    def test_inflight_requests_answered_during_stop(self, cases):
        """stop() drains: an admitted slow request still gets its answer."""
        with serve(method=SlowMiner(0.3)) as server:
            client = ServingClient("127.0.0.1", server.http_port)
            with ThreadPoolExecutor(max_workers=1) as pool:
                future = pool.submit(client.localize, cases[0], None, 1)
                time.sleep(0.1)  # let it get admitted
                server.stop()
                body = future.result(timeout=30)
                assert body["status"] == "ok"
