"""Protocol tests: framing, request validation, typed codes."""

from __future__ import annotations

import json

import pytest

from repro.data.io import case_to_dict
from repro.data.rapmd import RAPMDConfig, generate_rapmd
from repro.data.schema import cdn_schema
from repro.serving import protocol
from repro.serving.protocol import (
    ERROR_CODES,
    FRAME_HEADER,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAGIC,
    ProtocolError,
    SHED_CODES,
    decode_frame,
    encode_frame,
    error_body,
    http_status_for,
    ok_body,
    parse_request,
    shed_body,
)


@pytest.fixture(scope="module")
def case():
    return generate_rapmd(
        cdn_schema(3, 2, 2), RAPMDConfig(n_cases=1, n_days=1, seed=5)
    )[0]


def request_bytes(case, **extra) -> bytes:
    return json.dumps({"case": case_to_dict(case), **extra}).encode()


class TestFraming:
    def test_round_trip(self):
        payload = {"hello": "world", "n": 3}
        kind, body = decode_frame(encode_frame(KIND_REQUEST, payload))
        assert kind == KIND_REQUEST
        assert json.loads(body) == payload

    def test_response_and_error_kinds_encode(self):
        for kind in (protocol.KIND_RESPONSE, protocol.KIND_ERROR):
            got, __ = decode_frame(encode_frame(kind, {}))
            assert got == kind

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ValueError):
            encode_frame(7, {})

    def test_truncated_header(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(b"RPS")
        assert excinfo.value.code == "truncated"

    def test_truncated_payload(self):
        frame = encode_frame(KIND_REQUEST, {"a": 1})
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(frame[:-2])
        assert excinfo.value.code == "truncated"

    def test_bad_magic(self):
        frame = b"XXXX" + encode_frame(KIND_REQUEST, {})[4:]
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(frame)
        assert excinfo.value.code == "bad_frame"

    def test_bad_version(self):
        frame = bytearray(encode_frame(KIND_REQUEST, {}))
        frame[4] = 99
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(bytes(frame))
        assert excinfo.value.code == "bad_frame"

    def test_bad_kind(self):
        frame = bytearray(encode_frame(KIND_REQUEST, {}))
        frame[5] = 9
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(bytes(frame))
        assert excinfo.value.code == "bad_frame"

    def test_oversized_declaration(self):
        header = FRAME_HEADER.pack(MAGIC, protocol.PROTOCOL_VERSION, KIND_REQUEST, 10_000)
        with pytest.raises(ProtocolError) as excinfo:
            decode_frame(header + b"x" * 10_000, max_payload=100)
        assert excinfo.value.code == "oversized_payload"


class TestParseRequest:
    def test_valid_minimal(self, case):
        request = parse_request(request_bytes(case))
        assert request.case.case_id == case.case_id
        assert request.tenant == "default"
        assert request.k is None and request.deadline_ms is None

    def test_full_fields(self, case):
        request = parse_request(
            request_bytes(case, tenant="edge", k=3, deadline_ms=50, request_id="r7")
        )
        assert request.tenant == "edge"
        assert request.k == 3
        assert request.deadline_ms == 50.0
        assert request.request_id == "r7"

    def test_tenant_falls_back_to_case_metadata(self, case):
        data = {"case": case_to_dict(case)}
        data["case"]["metadata"]["tenant"] = "from-meta"
        request = parse_request(json.dumps(data).encode())
        assert request.tenant == "from-meta"

    def test_bad_json(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"{nope")
        assert excinfo.value.code == "bad_json"

    def test_non_utf8(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"\xff\xfe\x00")
        assert excinfo.value.code == "bad_json"

    def test_not_an_object(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b"[1, 2]")
        assert excinfo.value.code == "bad_request"

    def test_missing_case(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"tenant": "a"}')
        assert excinfo.value.code == "bad_request"

    def test_unknown_field(self, case):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(request_bytes(case, wat=1))
        assert excinfo.value.code == "bad_request"

    @pytest.mark.parametrize("k", [0, -1, 1.5, "3", True])
    def test_bad_k(self, case, k):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(request_bytes(case, k=k))
        assert excinfo.value.code == "bad_request"

    @pytest.mark.parametrize("deadline", [0, -5, "fast", True])
    def test_bad_deadline(self, case, deadline):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(request_bytes(case, deadline_ms=deadline))
        assert excinfo.value.code == "bad_request"

    def test_bad_case_bundle(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(b'{"case": {"schema": "not-a-schema"}}')
        assert excinfo.value.code == "bad_case"


class TestBodies:
    def test_ok_status_is_200(self):
        body = ok_body(
            case_id="c", tenant="t", root_causes=[], seconds=0.1,
            tier=None, stop_reason=None, shard=0, request_id=None,
        )
        assert body["tier"] == "full"
        assert http_status_for(body) == 200

    def test_every_error_code_maps(self):
        for code, status in ERROR_CODES.items():
            assert http_status_for(error_body(code, "x")) == status

    def test_every_shed_code_maps(self):
        for code, status in SHED_CODES.items():
            assert http_status_for(shed_body(code)) == status

    def test_unknown_codes_rejected(self):
        with pytest.raises(ValueError):
            error_body("nope", "x")
        with pytest.raises(ValueError):
            shed_body("nope")
        with pytest.raises(ValueError):
            ProtocolError("nope", "x")

    def test_code_sets_disjoint(self):
        assert not set(ERROR_CODES) & set(SHED_CODES)
