"""Admission controller tests: caps, precedence, degraded band, ledger."""

from __future__ import annotations

import pytest

from repro.serving import AdmissionConfig, AdmissionController


def controller(**kwargs) -> AdmissionController:
    return AdmissionController(AdmissionConfig(**kwargs))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_depth=4, soft_queue_depth=5)
        with pytest.raises(ValueError):
            AdmissionConfig(soft_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionConfig(tenant_inflight_limit=0)
        with pytest.raises(ValueError):
            AdmissionConfig(degraded_deadline_ms=0)

    def test_soft_band_optional(self):
        ctl = controller(max_queue_depth=2, soft_queue_depth=None)
        assert ctl.try_admit("a").tier == "full"
        assert ctl.try_admit("a").tier == "full"


class TestPolicy:
    def test_full_then_degraded_then_shed(self):
        ctl = controller(
            max_queue_depth=3, soft_queue_depth=2, tenant_inflight_limit=10
        )
        first = ctl.try_admit("a")
        second = ctl.try_admit("a")
        third = ctl.try_admit("a")
        fourth = ctl.try_admit("a")
        assert (first.tier, second.tier, third.tier) == ("full", "full", "degraded")
        assert third.deadline_ms == ctl.config.degraded_deadline_ms
        assert not fourth.admitted and fourth.shed_reason == "queue_full"

    def test_tenant_quota_isolates_tenants(self):
        ctl = controller(
            max_queue_depth=10, soft_queue_depth=None, tenant_inflight_limit=2
        )
        assert ctl.try_admit("hog").admitted
        assert ctl.try_admit("hog").admitted
        refused = ctl.try_admit("hog")
        assert refused.shed_reason == "tenant_quota"
        # Other tenants are untouched by the hog's exhaustion.
        assert ctl.try_admit("quiet").admitted

    def test_shutdown_precedes_everything(self):
        ctl = controller(max_queue_depth=10, soft_queue_depth=None)
        ctl.begin_shutdown()
        verdict = ctl.try_admit("a")
        assert verdict.shed_reason == "shutting_down"
        assert ctl.shutting_down

    def test_queue_full_precedes_tenant_quota(self):
        ctl = controller(
            max_queue_depth=1, soft_queue_depth=None, tenant_inflight_limit=1
        )
        assert ctl.try_admit("a").admitted
        # "b" has quota, but the server-wide cap decides first.
        assert ctl.try_admit("b").shed_reason == "queue_full"


class TestLedger:
    def test_release_restores_capacity(self):
        ctl = controller(max_queue_depth=1, soft_queue_depth=None)
        assert ctl.try_admit("a").admitted
        assert not ctl.try_admit("a").admitted
        ctl.release("a")
        assert ctl.depth == 0
        assert ctl.try_admit("a").admitted

    def test_release_without_admit_raises(self):
        ctl = controller()
        with pytest.raises(RuntimeError):
            ctl.release("a")

    def test_release_wrong_tenant_raises(self):
        ctl = controller()
        ctl.try_admit("a")
        with pytest.raises(RuntimeError):
            ctl.release("b")

    def test_snapshot_and_counters(self):
        ctl = controller()
        ctl.try_admit("a")
        ctl.try_admit("a")
        ctl.try_admit("b")
        assert ctl.depth == 3
        assert ctl.tenant_inflight("a") == 2
        assert ctl.snapshot() == {"a": 2, "b": 1}
        ctl.release("a")
        ctl.release("b")
        assert ctl.snapshot() == {"a": 1}

    def test_retry_after_scales_with_depth(self):
        ctl = controller()
        empty = ctl.retry_after_ms(10.0)
        ctl.try_admit("a")
        ctl.try_admit("a")
        assert ctl.retry_after_ms(10.0) >= empty

    def test_slots_still_release_during_shutdown(self):
        ctl = controller()
        ctl.try_admit("a")
        ctl.begin_shutdown()
        ctl.release("a")
        assert ctl.depth == 0
